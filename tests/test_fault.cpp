// Tests for the fault-injection and recovery subsystem: the deterministic
// FaultPlan oracle, transport-level retry/backoff, staging-server loss and
// relocation, and the workflow-level guarantees — identical failure
// timelines on both execution substrates, and every step completing (via
// in-situ fallback) through staging crashes.
#include <cstdint>
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "runtime/fault.hpp"
#include "runtime/monitor.hpp"
#include "staging/space.hpp"
#include "transport/fabric.hpp"
#include "workflow/coupled_workflow.hpp"
#include "workflow/execution_substrate.hpp"
#include "workflow/observer.hpp"
#include "workflow/trace_io.hpp"

using namespace xl;
using namespace xl::workflow;
using runtime::FaultConfig;
using runtime::FaultKind;
using runtime::FaultPlan;
using runtime::FaultSpec;

namespace {

// --- FaultPlan oracle --------------------------------------------------------

TEST(FaultPlan, DisabledByDefault) {
  const FaultConfig config;
  EXPECT_FALSE(config.enabled());
  const FaultPlan plan(config);
  EXPECT_FALSE(plan.enabled());
  EXPECT_FALSE(plan.transfer_attempt_fault(0, 0).has_value());
  EXPECT_EQ(plan.servers_down_at(0), 0);
  EXPECT_DOUBLE_EQ(plan.slowdown_at(0), 1.0);
}

TEST(FaultPlan, VerdictIsIndependentOfQueryOrder) {
  FaultConfig config;
  config.transfer_drop_rate = 0.3;
  config.transfer_corrupt_rate = 0.2;
  const FaultPlan plan(config);

  std::vector<std::optional<FaultKind>> forward, backward;
  for (std::uint64_t t = 0; t < 16; ++t) {
    for (int a = 0; a < 4; ++a) forward.push_back(plan.transfer_attempt_fault(t, a));
  }
  for (std::uint64_t t = 16; t-- > 0;) {
    for (int a = 4; a-- > 0;) backward.push_back(plan.transfer_attempt_fault(t, a));
  }
  ASSERT_EQ(forward.size(), backward.size());
  for (std::size_t i = 0; i < forward.size(); ++i) {
    EXPECT_EQ(forward[i], backward[forward.size() - 1 - i]) << "draw " << i;
  }
}

TEST(FaultPlan, RatesPartitionTheDraw) {
  FaultConfig all_drop;
  all_drop.transfer_drop_rate = 1.0;
  FaultConfig all_corrupt;
  all_corrupt.transfer_corrupt_rate = 1.0;
  for (std::uint64_t t = 0; t < 8; ++t) {
    EXPECT_EQ(FaultPlan(all_drop).transfer_attempt_fault(t, 0),
              std::optional<FaultKind>(FaultKind::TransferDrop));
    EXPECT_EQ(FaultPlan(all_corrupt).transfer_attempt_fault(t, 0),
              std::optional<FaultKind>(FaultKind::TransferCorrupt));
  }
}

TEST(FaultPlan, SeedChangesTheVerdicts) {
  FaultConfig a, b;
  a.transfer_drop_rate = b.transfer_drop_rate = 0.5;
  a.seed = 1;
  b.seed = 2;
  int differing = 0;
  for (std::uint64_t t = 0; t < 64; ++t) {
    differing += FaultPlan(a).transfer_attempt_fails(t, 0) !=
                 FaultPlan(b).transfer_attempt_fails(t, 0);
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultPlan, BackoffGrowsExponentially) {
  FaultConfig config;
  config.retry_backoff_seconds = 0.01;
  config.backoff_multiplier = 3.0;
  const FaultPlan plan(config);
  EXPECT_DOUBLE_EQ(plan.backoff_seconds(0), 0.01);
  EXPECT_DOUBLE_EQ(plan.backoff_seconds(1), 0.03);
  EXPECT_DOUBLE_EQ(plan.backoff_seconds(2), 0.09);
}

TEST(FaultPlan, CrashAndStragglerWindows) {
  FaultConfig config;
  FaultSpec crash;
  crash.kind = FaultKind::ServerCrash;
  crash.step = 5;
  crash.servers = 2;
  crash.duration_steps = 3;
  FaultSpec crash2 = crash;
  crash2.step = 6;
  crash2.servers = 1;
  crash2.duration_steps = 0;  // permanent
  FaultSpec slow;
  slow.kind = FaultKind::Straggler;
  slow.step = 4;
  slow.slowdown = 2.5;
  slow.duration_steps = 2;
  config.events = {crash, crash2, slow};
  const FaultPlan plan(config);
  EXPECT_TRUE(plan.enabled());

  EXPECT_EQ(plan.servers_down_at(4), 0);
  EXPECT_EQ(plan.servers_down_at(5), 2);
  EXPECT_EQ(plan.servers_down_at(6), 3);   // overlapping windows sum
  EXPECT_EQ(plan.servers_down_at(7), 3);
  EXPECT_EQ(plan.servers_down_at(8), 1);   // first window closed
  EXPECT_EQ(plan.servers_down_at(100), 1); // permanent crash never recovers

  EXPECT_DOUBLE_EQ(plan.slowdown_at(3), 1.0);
  EXPECT_DOUBLE_EQ(plan.slowdown_at(4), 2.5);
  EXPECT_DOUBLE_EQ(plan.slowdown_at(5), 2.5);
  EXPECT_DOUBLE_EQ(plan.slowdown_at(6), 1.0);
}

TEST(FaultSpecParse, ParsesEveryClause) {
  const FaultConfig c = runtime::parse_fault_spec(
      "seed=7;drop=0.1;corrupt=0.05;retries=5;backoff=0.01;backoff_mult=3;"
      "timeout=0.5;crash=10:2:5;straggler=3:2.5:4");
  EXPECT_EQ(c.seed, 7u);
  EXPECT_DOUBLE_EQ(c.transfer_drop_rate, 0.1);
  EXPECT_DOUBLE_EQ(c.transfer_corrupt_rate, 0.05);
  EXPECT_EQ(c.max_transfer_retries, 5);
  EXPECT_DOUBLE_EQ(c.retry_backoff_seconds, 0.01);
  EXPECT_DOUBLE_EQ(c.backoff_multiplier, 3.0);
  EXPECT_DOUBLE_EQ(c.transfer_timeout_seconds, 0.5);
  ASSERT_EQ(c.events.size(), 2u);
  EXPECT_EQ(c.events[0].kind, FaultKind::ServerCrash);
  EXPECT_EQ(c.events[0].step, 10);
  EXPECT_EQ(c.events[0].servers, 2);
  EXPECT_EQ(c.events[0].duration_steps, 5);
  EXPECT_EQ(c.events[1].kind, FaultKind::Straggler);
  EXPECT_EQ(c.events[1].step, 3);
  EXPECT_DOUBLE_EQ(c.events[1].slowdown, 2.5);
  EXPECT_EQ(c.events[1].duration_steps, 4);
  EXPECT_TRUE(c.enabled());
}

TEST(FaultSpecParse, RejectsBadInput) {
  EXPECT_THROW(runtime::parse_fault_spec("bogus=1"), ContractError);
  EXPECT_THROW(runtime::parse_fault_spec("drop=1.5"), ContractError);
  EXPECT_THROW(runtime::parse_fault_spec("drop=abc"), ContractError);
  EXPECT_THROW(runtime::parse_fault_spec("retries=-1"), ContractError);
  EXPECT_THROW(runtime::parse_fault_spec("backoff_mult=0.5"), ContractError);
  EXPECT_THROW(runtime::parse_fault_spec("crash="), ContractError);
}

// --- heartbeat lease detection -----------------------------------------------

TEST(LeaseDetection, ZeroLeaseIsOracleInstant) {
  FaultConfig config = runtime::parse_fault_spec("crash=5:2:3");
  ASSERT_EQ(config.lease_steps, 0);
  const FaultPlan plan(config);
  for (int step = 0; step < 12; ++step) {
    EXPECT_EQ(plan.detected_down_at(step), plan.servers_down_at(step)) << step;
    EXPECT_EQ(plan.suspected_at(step), 0) << step;
  }
}

TEST(LeaseDetection, DeclarationWaitsOutTheLeaseWindow) {
  FaultConfig config = runtime::parse_fault_spec("crash=5:2:6;lease=2");
  const FaultPlan plan(config);
  // Crash at step 5: servers are SUSPECTED until the lease expires at step 7
  // (min over the trailing window [step-2, step] only reaches 2 once every
  // sample in the window saw the servers down).
  EXPECT_EQ(plan.detected_down_at(5), 0);
  EXPECT_EQ(plan.suspected_at(5), 2);
  EXPECT_EQ(plan.detected_down_at(6), 0);
  EXPECT_EQ(plan.suspected_at(6), 2);
  EXPECT_EQ(plan.detected_down_at(7), 2);
  EXPECT_EQ(plan.suspected_at(7), 0);
  // Recovery needs no lease: the moment beats return, nothing is down.
  EXPECT_EQ(plan.detected_down_at(11), 0);
  EXPECT_EQ(plan.suspected_at(11), 0);
}

TEST(LeaseDetection, OutageShorterThanLeaseIsNeverDeclared) {
  FaultConfig config = runtime::parse_fault_spec("crash=5:2:2;lease=3");
  const FaultPlan plan(config);
  for (int step = 0; step < 12; ++step) {
    EXPECT_EQ(plan.detected_down_at(step), 0) << step;
    EXPECT_EQ(plan.suspected_at(step), plan.servers_down_at(step)) << step;
  }
}

TEST(LeaseDetection, ParseAcceptsLeaseClause) {
  const FaultConfig c = runtime::parse_fault_spec("crash=4:1:2;lease=3");
  EXPECT_EQ(c.lease_steps, 3);
  EXPECT_THROW(runtime::parse_fault_spec("lease=-1"), ContractError);
  // The lease alone enables nothing: it only shapes detection of real faults.
  EXPECT_FALSE(runtime::parse_fault_spec("lease=3").enabled());
}

TEST(LeaseDetection, MonitorHeartbeatsAgreeWithThePlan) {
  // The Monitor's windowed heartbeat tracker must declare exactly what the
  // plan's closed-form detection declares, step for step.
  FaultConfig config = runtime::parse_fault_spec("crash=3:2:4;crash=5:1:4;lease=2");
  const FaultPlan plan(config);
  runtime::Monitor monitor;
  const int total = 8;
  for (int step = 0; step < 12; ++step) {
    const int actual = plan.servers_down_at(step);
    monitor.record_heartbeats(step, total - actual, total, config.lease_steps);
    EXPECT_EQ(monitor.declared_down(), plan.detected_down_at(step)) << step;
    EXPECT_EQ(monitor.suspected_down(), plan.suspected_at(step)) << step;
  }
}

// --- transport-layer retry/backoff -------------------------------------------

struct FabricFixture {
  cluster::EventQueue queue;
  cluster::CostModel cost{cluster::test_machine()};
  std::vector<transport::TransferEvent> events;

  transport::Fabric make(transport::FabricConfig config) {
    config.observer = [this](const transport::TransferEvent& ev) {
      events.push_back(ev);
    };
    return transport::Fabric(queue, cost, std::move(config));
  }
};

TEST(FabricFault, RetriesThenCompletes) {
  FabricFixture fx;
  transport::FabricConfig config;
  config.retry_backoff_seconds = 0.25;
  config.fault_hook = [](std::uint64_t, int attempt) { return attempt == 0; };
  transport::Fabric fabric = fx.make(config);

  const std::size_t bytes = std::size_t{1} << 20;
  const double wire = fx.cost.transfer_seconds(bytes, 2, 2);
  double completed_at = -1.0;
  fabric.put(bytes, 2, 2, [&](double t) { completed_at = t; });
  fx.queue.run_until_empty();

  // Lost first attempt detected at wire time, backoff, clean second attempt.
  EXPECT_DOUBLE_EQ(completed_at, wire + 0.25 + wire);
  EXPECT_EQ(fabric.completed_count(), 1u);
  EXPECT_EQ(fabric.retry_count(), 1u);
  EXPECT_EQ(fabric.failed_count(), 0u);
  EXPECT_EQ(fabric.total_bytes_moved(), bytes);
  ASSERT_EQ(fx.events.size(), 3u);
  EXPECT_EQ(fx.events[0].kind, transport::TransferEvent::Kind::Started);
  EXPECT_EQ(fx.events[1].kind, transport::TransferEvent::Kind::Retried);
  EXPECT_DOUBLE_EQ(fx.events[1].backoff_seconds, 0.25);
  EXPECT_EQ(fx.events[2].kind, transport::TransferEvent::Kind::Completed);
  EXPECT_EQ(fx.events[2].attempt, 1);
  ASSERT_EQ(fabric.history().size(), 1u);
  EXPECT_EQ(fabric.history().front().attempts, 2);
  EXPECT_FALSE(fabric.history().front().failed);
}

TEST(FabricFault, ExhaustsRetriesAndFails) {
  FabricFixture fx;
  transport::FabricConfig config;
  config.max_retries = 2;
  config.retry_backoff_seconds = 0.1;
  config.backoff_multiplier = 2.0;
  config.fault_hook = [](std::uint64_t, int) { return true; };
  transport::Fabric fabric = fx.make(config);

  double completed_at = -1.0;
  double failed_at = -1.0;
  fabric.put(std::size_t{1} << 20, 2, 2, [&](double t) { completed_at = t; },
             [&](double t) { failed_at = t; });
  fx.queue.run_until_empty();

  const double wire = fx.cost.transfer_seconds(std::size_t{1} << 20, 2, 2);
  EXPECT_DOUBLE_EQ(completed_at, -1.0);
  // Three attempts (initial + 2 retries), two backoffs (0.1, 0.2).
  EXPECT_DOUBLE_EQ(failed_at, 3 * wire + 0.1 + 0.2);
  EXPECT_EQ(fabric.completed_count(), 0u);
  EXPECT_EQ(fabric.failed_count(), 1u);
  EXPECT_EQ(fabric.retry_count(), 2u);
  EXPECT_EQ(fabric.total_bytes_moved(), 0u);
  ASSERT_EQ(fx.events.size(), 4u);
  EXPECT_EQ(fx.events.back().kind, transport::TransferEvent::Kind::Failed);
  EXPECT_EQ(fx.events.back().attempt, 2);
  EXPECT_TRUE(fabric.history().front().failed);
  EXPECT_EQ(fabric.history().front().attempts, 3);
}

TEST(FabricFault, TimeoutDetectsLossEarly) {
  FabricFixture fx;
  const std::size_t bytes = std::size_t{8} << 20;
  const double wire = fx.cost.transfer_seconds(bytes, 2, 2);
  transport::FabricConfig config;
  config.timeout_seconds = 0.5 * wire;
  config.retry_backoff_seconds = 0.0;
  config.fault_hook = [](std::uint64_t, int attempt) { return attempt == 0; };
  transport::Fabric fabric = fx.make(config);

  double completed_at = -1.0;
  fabric.put(bytes, 2, 2, [&](double t) { completed_at = t; });
  fx.queue.run_until_empty();
  EXPECT_DOUBLE_EQ(completed_at, 0.5 * wire + wire);
}

TEST(Fabric, HistoryIsBoundedWithFifoEviction) {
  FabricFixture fx;
  transport::FabricConfig config;
  config.history_cap = 4;
  transport::Fabric fabric = fx.make(config);
  for (int i = 0; i < 6; ++i) fabric.put(1 << 10, 2, 2, [](double) {});
  fx.queue.run_until_empty();

  EXPECT_EQ(fabric.started_count(), 6u);
  EXPECT_EQ(fabric.completed_count(), 6u);
  ASSERT_EQ(fabric.history().size(), 4u);
  EXPECT_EQ(fabric.history().front().id, 2u);  // 0 and 1 evicted
  EXPECT_EQ(fabric.history().back().id, 5u);
}

TEST(Fabric, HistoryCanBeDisabled) {
  FabricFixture fx;
  transport::FabricConfig config;
  config.history_cap = 0;
  transport::Fabric fabric = fx.make(config);
  fabric.put(1 << 10, 2, 2, [](double) {});
  fx.queue.run_until_empty();
  EXPECT_TRUE(fabric.history().empty());
  EXPECT_EQ(fabric.completed_count(), 1u);
}

// --- staging-space server loss -----------------------------------------------

TEST(StagingSpaceFault, FailServerRelocatesOntoSurvivors) {
  staging::StagingSpace space(2, std::size_t{1} << 20);
  std::size_t total = 0;
  for (int i = 0; i < 8; ++i) {
    const mesh::Box box = mesh::Box::cube({8 * i, 0, 0}, 4);
    space.put(0, box, 1, std::size_t{1} << 10);
    total += std::size_t{1} << 10;
  }
  ASSERT_EQ(space.used_bytes(), total);
  // Fail whichever server the Morton hash loaded (hash-agnostic).
  const int victim = space.server_used_bytes(0) > 0 ? 0 : 1;
  const std::size_t on_victim = space.server_used_bytes(victim);
  ASSERT_GT(on_victim, 0u);

  const staging::ServerLossReport report = space.fail_server(victim);
  EXPECT_EQ(report.server, victim);
  // Plenty of room on the survivor: everything relocates, nothing dropped.
  EXPECT_EQ(report.relocated_bytes, on_victim);
  EXPECT_EQ(report.dropped_bytes, 0u);
  EXPECT_EQ(space.used_bytes(), total);
  EXPECT_EQ(space.server_used_bytes(victim), 0u);
  EXPECT_EQ(space.alive_servers(), 1);
  EXPECT_EQ(space.capacity_bytes(), std::size_t{1} << 20);
  EXPECT_FALSE(space.server_alive(victim));
  // All 8 objects still queryable.
  EXPECT_EQ(space.query(0, mesh::Box::domain({128, 8, 8})).size(), 8u);
}

TEST(StagingSpaceFault, FailServerDropsWithoutRequeue) {
  staging::StagingSpace space(2, std::size_t{1} << 20);
  for (int i = 0; i < 8; ++i) {
    space.put(0, mesh::Box::cube({8 * i, 0, 0}, 4), 1, std::size_t{1} << 10);
  }
  const std::size_t before = space.used_bytes();
  const int victim = space.server_used_bytes(1) > 0 ? 1 : 0;
  const std::size_t on_victim = space.server_used_bytes(victim);
  const staging::ServerLossReport report =
      space.fail_server(victim, staging::LossPolicy::Drop);
  EXPECT_EQ(report.relocated_bytes, 0u);
  EXPECT_EQ(report.dropped_bytes, on_victim);
  EXPECT_EQ(space.used_bytes(), before - on_victim);
}

TEST(StagingSpaceFault, PutProbesPastDeadServer) {
  staging::StagingSpace space(3, std::size_t{1} << 20);
  const mesh::Box box = mesh::Box::cube({0, 0, 0}, 4);
  const int hashed = staging::server_for_box(box, 3);
  space.fail_server(hashed, staging::LossPolicy::Drop);
  EXPECT_NE(space.target_server(box), hashed);
  EXPECT_TRUE(space.can_accept(box, 1 << 10));
  const std::uint64_t id = space.put(0, box, 1, 1 << 10);
  (void)id;
  EXPECT_EQ(space.server_used_bytes(hashed), 0u);
}

TEST(StagingSpaceFault, RecoverRestoresCapacityAndHashTarget) {
  staging::StagingSpace space(2, std::size_t{1} << 20);
  space.fail_server(0);
  ASSERT_EQ(space.alive_servers(), 1);
  space.recover_server(0);
  EXPECT_EQ(space.alive_servers(), 2);
  EXPECT_TRUE(space.server_alive(0));
  EXPECT_EQ(space.capacity_bytes(), std::size_t{2} << 20);
  const mesh::Box box = mesh::Box::cube({0, 0, 0}, 4);
  EXPECT_EQ(space.target_server(box), staging::server_for_box(box, 2));
}

TEST(StagingSpaceFault, NoAliveServerRejectsPuts) {
  staging::StagingSpace space(2, std::size_t{1} << 20);
  space.fail_server(0, staging::LossPolicy::Drop);
  space.fail_server(1, staging::LossPolicy::Drop);
  EXPECT_EQ(space.alive_servers(), 0);
  const mesh::Box box = mesh::Box::cube({0, 0, 0}, 4);
  EXPECT_EQ(space.target_server(box), -1);
  EXPECT_FALSE(space.can_accept(box, 1 << 10));
  EXPECT_THROW(space.put(0, box, 1, 1 << 10), ContractError);
}

// --- workflow-level determinism and recovery ---------------------------------

// Same configuration as test_pipeline.cpp's golden_config.
WorkflowConfig fault_config(Mode mode) {
  WorkflowConfig c;
  c.machine = cluster::titan();
  c.sim_cores = 128;
  c.staging_cores = 8;
  c.steps = 15;
  c.mode = mode;
  c.geometry.base_domain = mesh::Box::domain({128, 64, 64});
  c.geometry.nranks = 128;
  c.geometry.tile_size = 8;
  c.geometry.front_speed = 0.01;
  c.memory_model.ncomp = 1;
  c.hints.factor_phases = {{0, {2, 4}}};
  return c;
}

FaultConfig stormy_faults() {
  // Drops AND a partial crash AND a straggler window, all in one run.
  FaultConfig f = runtime::parse_fault_spec(
      "seed=11;drop=0.3;retries=2;backoff=0.001;crash=5:4:4;straggler=9:2:3");
  return f;
}

std::string events_csv_of(const WorkflowConfig& config, ExecutionSubstrate& substrate) {
  CoupledWorkflow wf(config);
  EventLog log;
  wf.set_observer(&log);
  (void)wf.run_on(substrate);
  std::ostringstream os;
  write_events_csv(os, log);
  return os.str();
}

TEST(FaultPipeline, SubstratesEmitByteIdenticalEventLogs) {
  for (Mode mode : {Mode::StaticInTransit, Mode::AdaptiveMiddleware, Mode::Global}) {
    WorkflowConfig config = fault_config(mode);
    config.faults = stormy_faults();
    AnalyticSubstrate analytic;
    EventQueueSubstrate des;
    const std::string a = events_csv_of(config, analytic);
    const std::string d = events_csv_of(config, des);
    EXPECT_EQ(a, d) << mode_name(mode);
    // The storm actually happened: the log contains fault traffic.
    EXPECT_NE(a.find("fault"), std::string::npos) << mode_name(mode);
  }
}

TEST(FaultPipeline, SameSeedReproducesTheRun) {
  WorkflowConfig config = fault_config(Mode::AdaptiveMiddleware);
  config.faults = stormy_faults();
  AnalyticSubstrate s1, s2;
  EXPECT_EQ(events_csv_of(config, s1), events_csv_of(config, s2));
}

TEST(FaultPipeline, MidRunCrashStillCompletesEveryStep) {
  WorkflowConfig config = fault_config(Mode::StaticInTransit);
  // The whole staging partition dies at step 5 and returns at step 10.
  config.faults = runtime::parse_fault_spec("crash=5:8:5");

  CoupledWorkflow wf(config);
  EventLog log;
  wf.set_observer(&log);
  const WorkflowResult r = wf.run();

  // No aborts, no lost steps: every step ran its analysis.
  ASSERT_EQ(r.steps.size(), 15u);
  EXPECT_EQ(r.skipped_count, 0);
  for (const StepRecord& s : r.steps) {
    EXPECT_FALSE(s.analysis_skipped) << "step " << s.step;
    const bool outage = s.step >= 5 && s.step < 10;
    EXPECT_EQ(s.placement,
              outage ? runtime::Placement::InSitu : runtime::Placement::InTransit)
        << "step " << s.step;
    if (outage) {
      EXPECT_EQ(s.decision_reason, runtime::DecisionReason::StagingUnavailable)
          << "step " << s.step;
      EXPECT_EQ(s.servers_down, 8) << "step " << s.step;
    }
  }
  EXPECT_EQ(r.insitu_count, 5);
  EXPECT_EQ(r.intransit_count, 10);
  EXPECT_EQ(r.degraded_insitu_count, 5);
  EXPECT_EQ(r.faults_injected, 1);
  EXPECT_EQ(r.recoveries, 1);
  EXPECT_EQ(log.count(EventKind::Fault), 1u);
  EXPECT_EQ(log.count(EventKind::Recovery), 1u);
}

TEST(FaultPipeline, PermanentCrashDegradesTheRestOfTheRun) {
  WorkflowConfig config = fault_config(Mode::StaticInTransit);
  config.faults = runtime::parse_fault_spec("crash=5:8");  // permanent

  const WorkflowResult r = CoupledWorkflow(config).run();
  ASSERT_EQ(r.steps.size(), 15u);
  EXPECT_EQ(r.skipped_count, 0);
  for (const StepRecord& s : r.steps) {
    EXPECT_EQ(s.placement, s.step >= 5 ? runtime::Placement::InSitu
                                       : runtime::Placement::InTransit)
        << "step " << s.step;
  }
  EXPECT_EQ(r.recoveries, 0);
  EXPECT_EQ(r.degraded_insitu_count, 10);
}

TEST(FaultPipeline, TransferRetriesAreAccountedConsistently) {
  WorkflowConfig config = fault_config(Mode::StaticInTransit);
  config.faults = runtime::parse_fault_spec("seed=3;drop=0.5;retries=4");

  CoupledWorkflow wf(config);
  EventLog log;
  wf.set_observer(&log);
  const WorkflowResult r = wf.run();

  EXPECT_GT(r.transfer_retries, 0);
  int per_step_retries = 0;
  for (const StepRecord& s : r.steps) per_step_retries += s.transfer_retries;
  EXPECT_EQ(per_step_retries, r.transfer_retries);
  EXPECT_EQ(log.count(EventKind::Retry),
            static_cast<std::size_t>(r.transfer_retries));
  ASSERT_EQ(r.steps.size(), 15u);
  EXPECT_EQ(r.skipped_count, 0);
}

TEST(FaultPipeline, ExhaustedTransfersFallBackInSitu) {
  WorkflowConfig config = fault_config(Mode::StaticInTransit);
  config.faults = runtime::parse_fault_spec("drop=1;retries=1");

  const WorkflowResult r = CoupledWorkflow(config).run();
  ASSERT_EQ(r.steps.size(), 15u);
  EXPECT_EQ(r.skipped_count, 0);
  EXPECT_EQ(r.transfer_failures, 15);
  EXPECT_EQ(r.insitu_count, 15);
  EXPECT_EQ(r.degraded_insitu_count, 15);
  EXPECT_EQ(r.bytes_moved, 0u);
  for (const StepRecord& s : r.steps) {
    EXPECT_TRUE(s.transfer_failed) << "step " << s.step;
    // One retry (the budget) before the second attempt is declared fatal.
    EXPECT_EQ(s.transfer_retries, 1) << "step " << s.step;
  }
}

TEST(FaultPipeline, StragglerStretchesInTransitWorkThenRecovers) {
  WorkflowConfig baseline_config = fault_config(Mode::StaticInTransit);
  const WorkflowResult baseline = CoupledWorkflow(baseline_config).run();

  WorkflowConfig config = fault_config(Mode::StaticInTransit);
  config.faults = runtime::parse_fault_spec("straggler=5:3:5");
  const WorkflowResult r = CoupledWorkflow(config).run();

  ASSERT_EQ(r.steps.size(), baseline.steps.size());
  EXPECT_EQ(r.faults_injected, 1);
  EXPECT_EQ(r.recoveries, 1);
  for (std::size_t i = 0; i < r.steps.size(); ++i) {
    const bool windowed = r.steps[i].step >= 5 && r.steps[i].step < 10;
    const double expected = baseline.steps[i].intransit_analysis_seconds *
                            (windowed ? 3.0 : 1.0);
    EXPECT_DOUBLE_EQ(r.steps[i].intransit_analysis_seconds, expected)
        << "step " << i;
  }
  EXPECT_GE(r.end_to_end_seconds, baseline.end_to_end_seconds);
}

// --- workflow-level replication and lease ------------------------------------

// Heavy in-transit load (expensive analysis kernels on a small staging
// partition), so the staging backlog is non-empty when crashes fire and the
// replication shed/repair arithmetic runs on real staged bytes.
WorkflowConfig replicated_config(int replication, int lease_steps) {
  WorkflowConfig c = fault_config(Mode::StaticInTransit);
  c.geometry.base_domain = mesh::Box::domain({256, 128, 128});
  c.hints.factor_phases = {{0, {2}}};
  c.active_cell_fraction = 0.5;
  c.costs.mc_scan_flops_per_cell = 500;
  c.costs.mc_active_flops_per_cell = 5000;
  c.replication = replication;
  c.faults = runtime::parse_fault_spec("seed=11;retries=2;backoff=0.001;crash=5:1:4");
  c.faults.lease_steps = lease_steps;
  return c;
}

TEST(ReplicatedPipeline, SubstratesStayByteIdenticalWithReplicationAndLease) {
  for (int lease : {0, 2}) {
    WorkflowConfig config = replicated_config(/*replication=*/2, lease);
    AnalyticSubstrate analytic;
    EventQueueSubstrate des;
    const std::string a = events_csv_of(config, analytic);
    const std::string d = events_csv_of(config, des);
    EXPECT_EQ(a, d) << "lease=" << lease;
    // The durability stream actually flowed.
    EXPECT_NE(a.find("replica-created"), std::string::npos) << "lease=" << lease;
    EXPECT_NE(a.find("replica-lost"), std::string::npos) << "lease=" << lease;
    EXPECT_NE(a.find("repair-scheduled"), std::string::npos) << "lease=" << lease;
    if (lease > 0) {
      EXPECT_NE(a.find("server-suspected"), std::string::npos);
    }
  }
}

TEST(ReplicatedPipeline, SingleFailureLosesNothingAtKTwo) {
  // d = 1 < k = 2: zero staged-object loss, repair traffic scheduled instead.
  const WorkflowResult replicated =
      CoupledWorkflow(replicated_config(/*replication=*/2, /*lease=*/0)).run();
  EXPECT_EQ(replicated.dropped_bytes, 0u);
  EXPECT_GE(replicated.repairs_scheduled, 1);
  EXPECT_GT(replicated.repair_bytes, 0u);
  EXPECT_GT(replicated.replicated_bytes, 0u);

  // The identical schedule without replication loses staged bytes — the
  // durability layer is what saved them, not a gentle schedule.
  const WorkflowResult bare =
      CoupledWorkflow(replicated_config(/*replication=*/1, /*lease=*/0)).run();
  EXPECT_GT(bare.dropped_bytes, 0u);
  EXPECT_EQ(bare.repairs_scheduled, 0);
  EXPECT_EQ(bare.replicated_bytes, 0u);
}

TEST(ReplicatedPipeline, SuspectedServersForceTransferRetries) {
  const WorkflowResult instant =
      CoupledWorkflow(replicated_config(/*replication=*/2, /*lease=*/0)).run();
  const WorkflowResult leased =
      CoupledWorkflow(replicated_config(/*replication=*/2, /*lease=*/2)).run();
  EXPECT_EQ(instant.server_suspicions, 0);
  EXPECT_GE(leased.server_suspicions, 1);
  // Transfers routed at suspected servers retry until the lease expires.
  EXPECT_GT(leased.transfer_retries, instant.transfer_retries);
  int suspected_steps = 0;
  for (const StepRecord& s : leased.steps) suspected_steps += s.servers_suspected > 0;
  EXPECT_GE(suspected_steps, 1);
}

TEST(ReplicatedPipeline, ReplicationOneAndZeroLeaseMatchTheOriginalPath) {
  // replication = 1 + lease = 0 must be byte-identical to a config that
  // never heard of the durability layer (the golden-invariance contract).
  WorkflowConfig config = fault_config(Mode::AdaptiveMiddleware);
  config.faults = stormy_faults();
  WorkflowConfig with_defaults = config;
  with_defaults.replication = 1;
  with_defaults.faults.lease_steps = 0;
  AnalyticSubstrate s1, s2;
  EXPECT_EQ(events_csv_of(config, s1), events_csv_of(with_defaults, s2));
  const WorkflowResult r = CoupledWorkflow(config).run();
  EXPECT_EQ(r.server_suspicions, 0);
  EXPECT_EQ(r.repairs_scheduled, 0);
  EXPECT_EQ(r.read_repairs, 0);
  EXPECT_EQ(r.repair_bytes, 0u);
  EXPECT_EQ(r.replicated_bytes, 0u);
}

TEST(FaultPipeline, SeedAloneDoesNotEnableInjection) {
  // A changed fault seed with no rates/events must leave the run untouched.
  const WorkflowResult base = CoupledWorkflow(fault_config(Mode::Global)).run();
  WorkflowConfig config = fault_config(Mode::Global);
  config.faults.seed = 0xDEADBEEF;
  EXPECT_FALSE(config.faults.enabled());
  const WorkflowResult r = CoupledWorkflow(config).run();
  EXPECT_EQ(r.end_to_end_seconds, base.end_to_end_seconds);
  EXPECT_EQ(r.bytes_moved, base.bytes_moved);
  EXPECT_EQ(r.faults_injected, 0);
  EXPECT_EQ(r.transfer_retries, 0);
}

}  // namespace
