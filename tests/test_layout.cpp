// Tests for domain decomposition, load balancing and layout accounting.
#include <algorithm>
#include <cstdint>
#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"
#include "mesh/layout.hpp"

namespace xl::mesh {
namespace {

TEST(Decompose, TilesDomainExactly) {
  const Box domain = Box::domain({64, 32, 16});
  const auto boxes = decompose(domain, 16);
  std::int64_t cells = 0;
  for (const Box& b : boxes) {
    cells += b.num_cells();
    EXPECT_TRUE(domain.contains(b));
    for (int d = 0; d < kDim; ++d) EXPECT_LE(b.size()[d], 16);
  }
  EXPECT_EQ(cells, domain.num_cells());
  EXPECT_EQ(boxes.size(), 4u * 2u * 1u);
  for (std::size_t i = 0; i < boxes.size(); ++i) {
    for (std::size_t j = i + 1; j < boxes.size(); ++j) {
      EXPECT_FALSE(boxes[i].intersects(boxes[j]));
    }
  }
}

TEST(Decompose, NonMultipleSizesStillCover) {
  const Box domain = Box::domain({10, 7, 5});
  const auto boxes = decompose(domain, 4);
  std::int64_t cells = 0;
  for (const Box& b : boxes) cells += b.num_cells();
  EXPECT_EQ(cells, domain.num_cells());
}

TEST(Decompose, EmptyAndSingle) {
  EXPECT_TRUE(decompose(Box(), 8).empty());
  const auto one = decompose(Box::cube({0, 0, 0}, 4), 8);
  ASSERT_EQ(one.size(), 1u);
}

TEST(MortonKey, OrdersLocally) {
  // Z-order: nearby points get nearby keys; key is strictly monotone along
  // the diagonal.
  std::uint64_t prev = 0;
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t k = morton_key({i, i, i});
    if (i > 0) {
      EXPECT_GT(k, prev);
    }
    prev = k;
  }
  EXPECT_NE(morton_key({1, 0, 0}), morton_key({0, 1, 0}));
  // Negative coordinates remain valid (biased).
  EXPECT_LT(morton_key({-4, -4, -4}), morton_key({4, 4, 4}));
}

class BalanceTest : public ::testing::TestWithParam<BalanceMethod> {};

TEST_P(BalanceTest, AssignsAllBoxesToValidRanks) {
  const auto boxes = decompose(Box::domain({32, 32, 32}), 8);
  const BoxLayout layout = balance(boxes, 7, GetParam());
  EXPECT_EQ(layout.num_boxes(), boxes.size());
  EXPECT_EQ(layout.num_ranks(), 7);
  for (std::size_t i = 0; i < layout.num_boxes(); ++i) {
    EXPECT_GE(layout.rank_of(i), 0);
    EXPECT_LT(layout.rank_of(i), 7);
  }
  EXPECT_EQ(layout.total_cells(), 32 * 32 * 32);
}

TEST_P(BalanceTest, ReasonableImbalance) {
  const auto boxes = decompose(Box::domain({64, 64, 64}), 8);  // 512 equal boxes
  const BoxLayout layout = balance(boxes, 8, GetParam());
  EXPECT_GE(layout.imbalance(), 1.0);
  EXPECT_LE(layout.imbalance(), 1.05);  // equal boxes, divisible count
  const auto cells = layout.cells_per_rank();
  EXPECT_EQ(std::accumulate(cells.begin(), cells.end(), std::int64_t{0}),
            layout.total_cells());
}

TEST_P(BalanceTest, MoreRanksThanBoxes) {
  const auto boxes = decompose(Box::domain({16, 16, 16}), 16);  // 1 box
  const BoxLayout layout = balance(boxes, 4, GetParam());
  EXPECT_EQ(layout.num_boxes(), 1u);
  const auto cells = layout.cells_per_rank();
  int nonzero = 0;
  for (auto c : cells) nonzero += c > 0;
  EXPECT_EQ(nonzero, 1);
}

INSTANTIATE_TEST_SUITE_P(Methods, BalanceTest,
                         ::testing::Values(BalanceMethod::MortonRoundRobin,
                                           BalanceMethod::KnapsackLpt));

TEST(Balance, KnapsackBeatsNaiveOnSkewedBoxes) {
  // One huge box plus many small ones: LPT must not stack smalls on the
  // rank holding the big box.
  std::vector<Box> boxes{Box::cube({0, 0, 0}, 16)};  // 4096 cells
  for (int i = 0; i < 8; ++i) {
    boxes.push_back(Box::cube({32 + 4 * i, 0, 0}, 4));  // 64 cells each
  }
  const BoxLayout layout = balance(boxes, 2, BalanceMethod::KnapsackLpt);
  const auto cells = layout.cells_per_rank();
  // Big box alone on one rank, all smalls on the other.
  EXPECT_EQ(std::max(cells[0], cells[1]), 4096);
  EXPECT_EQ(std::min(cells[0], cells[1]), 8 * 64);
}

TEST(BoxLayout, BoxesOfRankPartition) {
  const auto boxes = decompose(Box::domain({32, 16, 16}), 8);
  const BoxLayout layout = balance(boxes, 3, BalanceMethod::MortonRoundRobin);
  std::size_t total = 0;
  for (int r = 0; r < 3; ++r) total += layout.boxes_of_rank(r).size();
  EXPECT_EQ(total, layout.num_boxes());
  EXPECT_EQ(layout.bounding_box(), Box::domain({32, 16, 16}));
}

TEST(BoxLayout, RejectsOverlapsAndBadRanks) {
  std::vector<Box> overlapping{Box::cube({0, 0, 0}, 4), Box::cube({2, 2, 2}, 4)};
  EXPECT_THROW(BoxLayout(overlapping, {0, 0}, 1), ContractError);
  std::vector<Box> ok{Box::cube({0, 0, 0}, 2)};
  EXPECT_THROW(BoxLayout(ok, {5}, 2), ContractError);
  EXPECT_THROW(BoxLayout(ok, {0, 1}, 2), ContractError);  // size mismatch
}

TEST(BoxLayout, EmptyLayoutStats) {
  const BoxLayout layout({}, {}, 4);
  EXPECT_EQ(layout.total_cells(), 0);
  EXPECT_DOUBLE_EQ(layout.imbalance(), 1.0);
  EXPECT_TRUE(layout.bounding_box().empty());
}

}  // namespace
}  // namespace xl::mesh
