// Tests for the software rasterizer: image plumbing, PPM format, occlusion
// (z-buffer), shading bounds, and coverage of a known isosurface.
#include <cstdint>
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "viz/render.hpp"

namespace xl::viz {
namespace {

TriangleMesh single_triangle() {
  TriangleMesh m;
  m.vertices = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
  return m;
}

TEST(Image, PixelAccessAndBounds) {
  Image img(4, 3, {1, 2, 3});
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.at(0, 0), (std::array<std::uint8_t, 3>{1, 2, 3}));
  img.at(3, 2) = {9, 9, 9};
  EXPECT_EQ(img.at(3, 2)[0], 9);
  EXPECT_THROW(img.at(4, 0), ContractError);
  EXPECT_THROW(img.at(0, 3), ContractError);
  EXPECT_THROW(Image(0, 4), ContractError);
}

TEST(Image, PpmFormat) {
  Image img(2, 2, {255, 0, 0});
  std::ostringstream os(std::ios::binary);
  img.write_ppm(os);
  const std::string out = os.str();
  EXPECT_EQ(out.substr(0, 11), "P6\n2 2\n255\n");
  EXPECT_EQ(out.size(), 11u + 12u);  // header + 4 pixels * 3 bytes
  EXPECT_EQ(static_cast<unsigned char>(out[11]), 255);
}

TEST(Image, CoverageMetric) {
  Image img(10, 10, {0, 0, 0});
  for (int i = 0; i < 5; ++i) img.at(i, 0) = {255, 255, 255};
  EXPECT_DOUBLE_EQ(img.coverage({0, 0, 0}), 0.05);
}

TEST(Render, EmptyMeshIsBackground) {
  const Image img = render_mesh(TriangleMesh{});
  RenderConfig cfg;
  EXPECT_DOUBLE_EQ(img.coverage(cfg.background_rgb), 0.0);
}

TEST(Render, TriangleCoversPixels) {
  RenderConfig cfg;
  cfg.width = 64;
  cfg.height = 64;
  cfg.view_dir = {0, 0, 1};
  const Image img = render_mesh(single_triangle(), cfg);
  const double cov = img.coverage(cfg.background_rgb);
  // The triangle is half the fitted square window (minus fit margin).
  EXPECT_GT(cov, 0.3);
  EXPECT_LT(cov, 0.6);
}

TEST(Render, NearerTriangleWins) {
  // Two overlapping triangles at different depths; colour the scene so the
  // shading differs: the front one faces the light directly, the back one is
  // tilted. With the z-buffer the covered pixels must show the front shade.
  TriangleMesh front = single_triangle();
  for (Vec3& v : front.vertices) v.z = 1.0;  // nearer along +z view
  TriangleMesh back = single_triangle();     // z = 0

  RenderConfig cfg;
  cfg.width = 32;
  cfg.height = 32;
  cfg.view_dir = {0, 0, 1};
  cfg.light_dir = {0, 0, 1};
  cfg.ambient = 0.0;

  // Render both orders; with correct depth testing the result is identical.
  TriangleMesh ab = front;
  ab.append(back);
  TriangleMesh ba = back;
  ba.append(front);
  const Image img_ab = render_mesh(ab, cfg);
  const Image img_ba = render_mesh(ba, cfg);
  for (int y = 0; y < cfg.height; ++y) {
    for (int x = 0; x < cfg.width; ++x) {
      EXPECT_EQ(img_ab.at(x, y), img_ba.at(x, y)) << "pixel " << x << "," << y;
    }
  }
}

TEST(Render, ShadingWithinConfiguredRange) {
  RenderConfig cfg;
  cfg.width = 32;
  cfg.height = 32;
  cfg.surface_rgb = {200, 100, 50};
  const Image img = render_mesh(single_triangle(), cfg);
  for (int y = 0; y < cfg.height; ++y) {
    for (int x = 0; x < cfg.width; ++x) {
      const auto& px = img.at(x, y);
      if (px == cfg.background_rgb) continue;
      EXPECT_LE(px[0], 200);
      EXPECT_LE(px[1], 100);
      EXPECT_LE(px[2], 50);
      EXPECT_GE(px[0], static_cast<std::uint8_t>(cfg.ambient * 200) - 1);
    }
  }
}

TEST(Render, SphereIsosurfaceRendersRoundBlob) {
  // A real pipeline check: marching cubes on a sphere field, rendered; the
  // coverage should approximate the disc-to-window ratio.
  mesh::Fab f(mesh::Box::domain({24, 24, 24}), 1);
  const double c = 12.0, r = 8.0;
  for (mesh::BoxIterator it(f.box()); it.ok(); ++it) {
    const double dx = (*it)[0] + 0.5 - c, dy = (*it)[1] + 0.5 - c,
                 dz = (*it)[2] + 0.5 - c;
    f(*it) = std::sqrt(dx * dx + dy * dy + dz * dz) - r;
  }
  const mesh::Box cells(f.box().lo(), f.box().hi() - 1);
  const TriangleMesh mesh = extract_isosurface(f, cells, 0.0);
  RenderConfig cfg;
  cfg.width = 96;
  cfg.height = 96;
  const Image img = render_mesh(mesh, cfg);
  const double cov = img.coverage(cfg.background_rgb);
  // Disc fills pi/4 of its bounding square; the fit margin shrinks it a bit.
  EXPECT_GT(cov, 0.55);
  EXPECT_LT(cov, 0.85);
}

TEST(Render, DegenerateTrianglesIgnored) {
  TriangleMesh m;
  m.vertices = {{0, 0, 0}, {1, 1, 1}, {2, 2, 2}};  // collinear
  const Image img = render_mesh(m);
  RenderConfig cfg;
  EXPECT_DOUBLE_EQ(img.coverage(cfg.background_rgb), 0.0);
}

}  // namespace
}  // namespace xl::viz
