// Tests for the workflow extensions: energy accounting (the paper's §7
// future-work direction), trace export, and subcycled AMR time stepping.
#include <cmath>
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "amr/advection_diffusion.hpp"
#include "amr/amr_simulation.hpp"
#include "workflow/coupled_workflow.hpp"
#include "workflow/energy.hpp"
#include "workflow/trace_io.hpp"

namespace xl::workflow {
namespace {

WorkflowConfig tiny_config(Mode mode) {
  WorkflowConfig c;
  c.machine = cluster::titan();
  c.sim_cores = 128;
  c.staging_cores = 8;
  c.steps = 10;
  c.mode = mode;
  c.geometry.base_domain = mesh::Box::domain({128, 64, 64});
  c.geometry.nranks = 128;
  c.geometry.tile_size = 8;
  c.memory_model.ncomp = 1;
  return c;
}

// --- Energy accounting -------------------------------------------------------

TEST(Energy, ComponentsArePositiveAndSum) {
  const WorkflowResult r = CoupledWorkflow(tiny_config(Mode::StaticInTransit)).run();
  const EnergyReport e = estimate_energy(r, 128);
  EXPECT_GT(e.sim_compute_joules, 0.0);
  EXPECT_GT(e.staging_active_joules, 0.0);
  EXPECT_GT(e.network_joules, 0.0);
  EXPECT_NEAR(e.total_joules(),
              e.sim_compute_joules + e.insitu_analysis_joules + e.sim_idle_joules +
                  e.staging_active_joules + e.staging_idle_joules + e.network_joules,
              1e-9);
}

TEST(Energy, InSituBurnsNoNetworkEnergy) {
  const WorkflowResult r = CoupledWorkflow(tiny_config(Mode::StaticInSitu)).run();
  const EnergyReport e = estimate_energy(r, 128);
  EXPECT_DOUBLE_EQ(e.network_joules, 0.0);
  EXPECT_GT(e.insitu_analysis_joules, 0.0);
}

TEST(Energy, NetworkEnergyProportionalToMovement) {
  const WorkflowResult r = CoupledWorkflow(tiny_config(Mode::StaticInTransit)).run();
  PowerSpec p;
  const EnergyReport e = estimate_energy(r, 128, p);
  EXPECT_NEAR(e.network_joules,
              p.network_joules_per_byte * static_cast<double>(r.bytes_moved), 1e-9);
}

TEST(Energy, HigherPowerSpecScalesReport) {
  const WorkflowResult r = CoupledWorkflow(tiny_config(Mode::StaticInTransit)).run();
  PowerSpec low, high;
  high.active_watts_per_core = 2.0 * low.active_watts_per_core;
  high.idle_watts_per_core = 2.0 * low.idle_watts_per_core;
  high.network_joules_per_byte = 2.0 * low.network_joules_per_byte;
  EXPECT_NEAR(estimate_energy(r, 128, high).total_joules(),
              2.0 * estimate_energy(r, 128, low).total_joules(), 1e-6);
}

TEST(Energy, ValidatesInputs) {
  const WorkflowResult r = CoupledWorkflow(tiny_config(Mode::StaticInSitu)).run();
  EXPECT_THROW(estimate_energy(r, 0), ContractError);
}

// --- Trace export ------------------------------------------------------------

TEST(TraceIo, CsvHasHeaderAndOneRowPerStep) {
  const WorkflowResult r = CoupledWorkflow(tiny_config(Mode::AdaptiveMiddleware)).run();
  std::ostringstream os;
  write_steps_csv(os, r);
  const std::string csv = os.str();
  std::size_t lines = 0;
  for (char ch : csv) lines += ch == '\n';
  EXPECT_EQ(lines, r.steps.size() + 1);
  EXPECT_EQ(csv.substr(0, 5), "step,");
  EXPECT_NE(csv.find("placement"), std::string::npos);
  EXPECT_NE(csv.find("in-"), std::string::npos);  // at least one placement value
}

TEST(TraceIo, SummaryContainsKeyFigures) {
  const WorkflowResult r = CoupledWorkflow(tiny_config(Mode::AdaptiveMiddleware)).run();
  const std::string s = summarize(r);
  EXPECT_NE(s.find("end_to_end_s="), std::string::npos);
  EXPECT_NE(s.find("moved_bytes="), std::string::npos);
  EXPECT_NE(s.find("staging_utilization="), std::string::npos);
}

// --- Subcycled AMR -----------------------------------------------------------

amr::AmrConfig subcycle_config(bool subcycle) {
  amr::AmrConfig cfg;
  cfg.base_domain = mesh::Box::domain({16, 16, 16});
  cfg.max_levels = 2;
  cfg.ref_ratio = 2;
  cfg.max_box_size = 8;
  cfg.nghost = 2;
  cfg.nranks = 1;
  cfg.subcycle = subcycle;
  return cfg;
}

TEST(Subcycling, LargerCoarseDtThanNonSubcycled) {
  auto make = [&](bool sub) {
    auto phys = std::make_shared<amr::AdvectionDiffusion>();
    amr::AmrSimulation sim(subcycle_config(sub), phys, {}, 0.4,
                           /*regrid_interval=*/1000);
    sim.initialize();
    return sim.advance().dt;
  };
  const double dt_plain = make(false);
  const double dt_sub = make(true);
  // Subcycled level-0 dt is limited by level 0 only: with a refined level
  // present, it is up to ref_ratio times larger.
  EXPECT_GT(dt_sub, dt_plain * 1.5);
}

TEST(Subcycling, ConservesMassOnSingleLevel) {
  auto phys = std::make_shared<amr::AdvectionDiffusion>();
  amr::AmrConfig cfg = subcycle_config(true);
  cfg.max_levels = 1;
  cfg.max_box_size = 16;
  amr::AmrSimulation sim(cfg, phys, {}, 0.4);
  sim.initialize();
  const double mass0 = sim.hierarchy().level(0).data.sum(0);
  for (int i = 0; i < 4; ++i) sim.advance();
  EXPECT_NEAR(sim.hierarchy().level(0).data.sum(0), mass0, 1e-9 * mass0);
}

TEST(Subcycling, TwoLevelRunStaysStableAndPositive) {
  amr::AdvectionDiffusionConfig pc;
  pc.diffusivity = 0.0;
  auto phys = std::make_shared<amr::AdvectionDiffusion>(pc);
  amr::TagCriterion crit;
  crit.rel_threshold = 0.1;
  amr::AmrSimulation sim(subcycle_config(true), phys, crit, 0.4, 4);
  sim.initialize();
  for (int i = 0; i < 6; ++i) {
    const amr::StepStats s = sim.advance();
    EXPECT_GT(s.dt, 0.0);
  }
  const auto [lo, hi] = sim.hierarchy().level(0).data.min_max(0);
  EXPECT_GE(lo, -1e-9);
  EXPECT_LT(hi, 2.0);  // no blow-up
}

TEST(Subcycling, MatchesNonSubcycledOnSmoothFlow) {
  // Both schemes integrate the same PDE; after the same physical time the
  // coarse solutions should agree to within the scheme differences.
  auto run = [&](bool sub) {
    auto phys = std::make_shared<amr::AdvectionDiffusion>();
    amr::AmrSimulation sim(subcycle_config(sub), phys, {}, 0.4, 1000);
    sim.initialize();
    while (sim.time() < 0.05) sim.advance();
    return sim.hierarchy().level(0).data.sum(0);
  };
  const double plain = run(false);
  const double sub = run(true);
  EXPECT_NEAR(sub, plain, 0.02 * std::fabs(plain));
}

}  // namespace
}  // namespace xl::workflow
