// Tests for the DataSpaces-style version locks and the selectable analysis
// kinds (the paper's "descriptive statistics / data subsetting" extension
// claim).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "staging/lock.hpp"
#include "workflow/coupled_workflow.hpp"

namespace xl {
namespace {

using staging::VersionLockManager;

TEST(VersionLocks, WriteThenReadSequence) {
  VersionLockManager locks;
  EXPECT_FALSE(locks.is_complete(0));
  locks.lock_on_write(0);
  EXPECT_FALSE(locks.is_complete(0));
  locks.unlock_on_write(0);
  EXPECT_TRUE(locks.is_complete(0));
  locks.lock_on_read(0);
  EXPECT_EQ(locks.active_readers(0), 1);
  locks.unlock_on_read(0);
  EXPECT_EQ(locks.active_readers(0), 0);
}

TEST(VersionLocks, ReaderBlocksUntilWriterFinishes) {
  VersionLockManager locks;
  std::atomic<bool> read_acquired{false};
  locks.lock_on_write(3);
  std::thread reader([&] {
    locks.lock_on_read(3);  // must block until unlock_on_write
    read_acquired = true;
    locks.unlock_on_read(3);
  });
  // Give the reader a chance to (incorrectly) proceed.
  // xl-lint: allow(banned-symbol): the sleep IS the test — it widens the race
  // window to catch a reader slipping past an unreleased write lock.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(read_acquired.load());
  locks.unlock_on_write(3);
  reader.join();
  EXPECT_TRUE(read_acquired.load());
}

TEST(VersionLocks, VersionsAreIndependent) {
  // Consumer of version v overlaps with producer of v+1: the pipelining the
  // in-transit path relies on.
  VersionLockManager locks;
  locks.lock_on_write(0);
  locks.unlock_on_write(0);
  locks.lock_on_read(0);       // reading v=0...
  locks.lock_on_write(1);      // ...while writing v=1: must not block
  locks.unlock_on_write(1);
  locks.unlock_on_read(0);
  EXPECT_TRUE(locks.is_complete(1));
}

TEST(VersionLocks, MultipleConcurrentReaders) {
  VersionLockManager locks;
  locks.lock_on_write(5);
  locks.unlock_on_write(5);
  std::atomic<int> done{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&] {
      locks.lock_on_read(5);
      ++done;
      // xl-lint: allow(banned-symbol): holds the shared read lock open so the
      // concurrent readers genuinely overlap.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      locks.unlock_on_read(5);
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(done.load(), 4);
  EXPECT_EQ(locks.active_readers(5), 0);
}

TEST(VersionLocks, MisuseIsRejected) {
  VersionLockManager locks;
  EXPECT_THROW(locks.unlock_on_write(9), ContractError);
  EXPECT_THROW(locks.unlock_on_read(9), ContractError);
  locks.lock_on_write(9);
  locks.unlock_on_write(9);
  EXPECT_THROW(locks.lock_on_write(9), ContractError);  // sealed version
}

// --- analysis kinds -----------------------------------------------------------

workflow::WorkflowConfig kind_config(workflow::AnalysisKind kind) {
  workflow::WorkflowConfig c;
  c.machine = cluster::titan();
  c.sim_cores = 128;
  c.staging_cores = 8;
  c.steps = 10;
  c.mode = workflow::Mode::StaticInSitu;
  c.geometry.base_domain = mesh::Box::domain({128, 64, 64});
  c.geometry.nranks = 128;
  c.memory_model.ncomp = 1;
  c.analysis_kind = kind;
  return c;
}

TEST(AnalysisKinds, CheaperKernelsCostLessOverhead) {
  using workflow::AnalysisKind;
  const double iso =
      workflow::CoupledWorkflow(kind_config(AnalysisKind::Isosurface)).run().overhead_seconds;
  const double stats =
      workflow::CoupledWorkflow(kind_config(AnalysisKind::Statistics)).run().overhead_seconds;
  const double subset =
      workflow::CoupledWorkflow(kind_config(AnalysisKind::Subsetting)).run().overhead_seconds;
  EXPECT_LT(stats, iso);
  EXPECT_LT(subset, stats);
  EXPECT_GT(subset, 0.0);
}

TEST(AnalysisKinds, Names) {
  using workflow::AnalysisKind;
  EXPECT_STREQ(workflow::analysis_kind_name(AnalysisKind::Isosurface), "isosurface");
  EXPECT_STREQ(workflow::analysis_kind_name(AnalysisKind::Statistics), "statistics");
  EXPECT_STREQ(workflow::analysis_kind_name(AnalysisKind::Subsetting), "subsetting");
}

TEST(AnalysisKinds, AdaptivePlacementWorksForAllKinds) {
  using workflow::AnalysisKind;
  for (AnalysisKind kind : {AnalysisKind::Isosurface, AnalysisKind::Statistics,
                            AnalysisKind::Subsetting}) {
    workflow::WorkflowConfig c = kind_config(kind);
    c.mode = workflow::Mode::AdaptiveMiddleware;
    const workflow::WorkflowResult r = workflow::CoupledWorkflow(c).run();
    EXPECT_EQ(r.insitu_count + r.intransit_count, 10) << analysis_kind_name(kind);
    EXPECT_GE(r.end_to_end_seconds, r.pure_sim_seconds);
  }
}

}  // namespace
}  // namespace xl
