// Tests for plotfile serialization: round trips through memory and disk,
// hierarchy restoration, and malformed-input rejection.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "amr/plotfile.hpp"

namespace xl::amr {
namespace {

using mesh::BoxIterator;

AmrHierarchy sample_hierarchy() {
  AmrConfig cfg;
  cfg.base_domain = Box::domain({16, 16, 16});
  cfg.max_levels = 2;
  cfg.ref_ratio = 2;
  cfg.max_box_size = 8;
  cfg.nghost = 1;
  cfg.nranks = 2;
  AmrHierarchy h(cfg, 2);
  std::vector<Box> fine{Box({8, 8, 8}, {15, 15, 15}), Box({16, 8, 8}, {23, 15, 15})};
  h.regrid({mesh::BoxLayout(fine, {0, 1}, 2)});
  // Distinctive data: value = level*1000 + linear index + 10*comp.
  for (std::size_t l = 0; l < h.num_levels(); ++l) {
    AmrLevel& level = h.level(l);
    for (std::size_t i = 0; i < level.layout.num_boxes(); ++i) {
      for (BoxIterator it(level.layout.box(i)); it.ok(); ++it) {
        for (int c = 0; c < 2; ++c) {
          level.data[i](*it, c) =
              1000.0 * static_cast<double>(l) + (*it)[0] + 0.1 * (*it)[1] + 10.0 * c;
        }
      }
    }
  }
  return h;
}

TEST(Plotfile, StreamRoundTripPreservesEverything) {
  const AmrHierarchy h = sample_hierarchy();
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_plotfile(buffer, h, 7, 0.125);
  const PlotFileData data = read_plotfile(buffer);

  EXPECT_EQ(data.step, 7);
  EXPECT_DOUBLE_EQ(data.time, 0.125);
  EXPECT_EQ(data.ncomp, 2);
  EXPECT_EQ(data.ref_ratio, 2);
  ASSERT_EQ(data.levels.size(), 2u);
  EXPECT_EQ(data.total_cells(), h.total_cells());
  EXPECT_EQ(data.levels[1].boxes.size(), 2u);
  EXPECT_EQ(data.levels[1].ranks, (std::vector<int>{0, 1}));

  // Spot-check payloads on both levels.
  const mesh::Fab& fine0 = data.levels[1].data[0];
  EXPECT_DOUBLE_EQ(fine0(mesh::IntVect{9, 10, 11}, 1), 1000.0 + 9 + 1.0 + 10.0);
  const mesh::Fab& coarse0 = data.levels[0].data[0];
  const mesh::IntVect p = data.levels[0].boxes[0].lo();
  EXPECT_DOUBLE_EQ(coarse0(p, 0), p[0] + 0.1 * p[1]);
}

TEST(Plotfile, FileRoundTrip) {
  const AmrHierarchy h = sample_hierarchy();
  const std::string path = "test_plotfile_roundtrip.xlpf";
  write_plotfile(path, h, 3, 1.5);
  const PlotFileData data = read_plotfile(path);
  EXPECT_EQ(data.step, 3);
  EXPECT_EQ(data.total_cells(), h.total_cells());
  std::remove(path.c_str());
}

TEST(Plotfile, HierarchyRestorationMatchesOriginal) {
  const AmrHierarchy h = sample_hierarchy();
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_plotfile(buffer, h, 0, 0.0);
  const PlotFileData data = read_plotfile(buffer);

  const AmrHierarchy restored = hierarchy_from_plotfile(data, h.config());
  ASSERT_EQ(restored.num_levels(), h.num_levels());
  EXPECT_EQ(restored.total_cells(), h.total_cells());
  for (std::size_t l = 0; l < h.num_levels(); ++l) {
    // Valid data identical (compare through the level sums and a probe).
    EXPECT_NEAR(restored.level(l).data.sum(0), h.level(l).data.sum(0), 1e-9);
    EXPECT_NEAR(restored.level(l).data.sum(1), h.level(l).data.sum(1), 1e-9);
  }
}

TEST(Plotfile, RejectsGarbageAndTruncation) {
  std::stringstream garbage(std::ios::in | std::ios::out | std::ios::binary);
  garbage << "not a plotfile at all";
  EXPECT_THROW(read_plotfile(garbage), ContractError);

  const AmrHierarchy h = sample_hierarchy();
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_plotfile(buffer, h, 0, 0.0);
  const std::string full = buffer.str();
  std::stringstream truncated(std::ios::in | std::ios::out | std::ios::binary);
  truncated << full.substr(0, full.size() / 2);
  EXPECT_THROW(read_plotfile(truncated), ContractError);
}

TEST(Plotfile, RestorationRejectsMismatchedDomain) {
  const AmrHierarchy h = sample_hierarchy();
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_plotfile(buffer, h, 0, 0.0);
  const PlotFileData data = read_plotfile(buffer);
  AmrConfig wrong = h.config();
  wrong.base_domain = Box::domain({32, 32, 32});
  EXPECT_THROW(hierarchy_from_plotfile(data, wrong), ContractError);
}

TEST(Plotfile, MissingFileThrows) {
  EXPECT_THROW(read_plotfile("definitely/not/here.xlpf"), ContractError);
}

}  // namespace
}  // namespace xl::amr
