// Tests for the paper's adaptation policies: application layer (eqs. 1-3),
// middleware layer (eqs. 4-8, including the Fig. 4 scenario), resource layer
// (eqs. 9-10), the Monitor's estimators, and the AdaptationEngine.
#include <gtest/gtest.h>

#include <cmath>

#include "common/contract.hpp"
#include "runtime/adaptation_engine.hpp"
#include "runtime/app_policy.hpp"
#include "runtime/middleware_policy.hpp"
#include "runtime/monitor.hpp"
#include "runtime/resource_policy.hpp"

namespace xl::runtime {
namespace {

constexpr std::size_t MB = std::size_t{1} << 20;

// --- Application-layer policy (eqs. 1-3) ------------------------------------

TEST(AppPolicy, AmpleMemorySelectsSmallestFactor) {
  // The §5.2.1 narrative: with memory available, the minimum down-sampling
  // factor (highest resolution) is selected.
  const AppDecision d =
      select_downsample_factor({2, 4}, 1 << 20, 5, 1024 * MB);
  EXPECT_EQ(d.factor, 2);
  EXPECT_FALSE(d.memory_constrained);
  EXPECT_EQ(d.reduced_bytes, analysis::reduced_bytes(1 << 20, 5, 2));
}

TEST(AppPolicy, TightMemoryWalksUpTheLadder) {
  const std::size_t raw_cells = 1 << 21;  // 2M cells, 5 comps = 80MB raw
  const std::size_t avail = 3 * MB;
  const AppDecision d = select_downsample_factor({2, 4, 8, 16}, raw_cells, 5, avail);
  EXPECT_GT(d.factor, 2);
  EXPECT_LE(d.scratch_bytes, xl::f2s(0.9 * avail));
  EXPECT_FALSE(d.memory_constrained);
}

TEST(AppPolicy, NoFactorFitsFlagsConstrained) {
  const AppDecision d = select_downsample_factor({2, 4}, 1 << 22, 5, 1024);
  EXPECT_EQ(d.factor, 4);  // largest acceptable, flagged
  EXPECT_TRUE(d.memory_constrained);
}

TEST(AppPolicy, Fig5PhaseSemantics) {
  // Factors {2,4} first half, {2,4,8,16} second half; memory shrinking over
  // time pushes the selection up exactly when availability crosses the
  // requirement — the step-31 behaviour of Fig. 5.
  UserHints hints;
  hints.factor_phases = {{0, {2, 4}}, {20, {2, 4, 8, 16}}};
  EXPECT_EQ(hints.factors_at(0), (std::vector<int>{2, 4}));
  EXPECT_EQ(hints.factors_at(19), (std::vector<int>{2, 4}));
  EXPECT_EQ(hints.factors_at(20), (std::vector<int>{2, 4, 8, 16}));
  EXPECT_EQ(hints.factors_at(39), (std::vector<int>{2, 4, 8, 16}));

  const std::size_t raw_cells = 4 << 20;
  const std::size_t need_x2 =
      analysis::reduction_scratch_bytes(raw_cells, 5, 2);
  // Plenty of memory early: factor 2.
  EXPECT_EQ(select_downsample_factor(hints.factors_at(10), raw_cells, 5,
                                     4 * need_x2)
                .factor,
            2);
  // Late, with availability below the factor-2 requirement: factor rises.
  EXPECT_GT(select_downsample_factor(hints.factors_at(31), raw_cells, 5,
                                     need_x2 / 4)
                .factor,
            2);
}

TEST(AppPolicy, ValidatesInputs) {
  EXPECT_THROW(select_downsample_factor({}, 100, 1, MB), ContractError);
  EXPECT_THROW(select_downsample_factor({4, 2}, 100, 1, MB), ContractError);
  EXPECT_THROW(select_downsample_factor({0, 2}, 100, 1, MB), ContractError);
}

TEST(AppPolicy, EntropySelectorRespectsMemoryFloor) {
  // High entropy wants factor 2, but memory admits only factor 8+.
  const std::size_t raw_cells = 1 << 21;
  const std::size_t avail =
      analysis::reduction_scratch_bytes(raw_cells, 5, 8) + (1 << 16);
  const AppDecision d = select_factor_by_entropy(
      9.0, {3.0, 6.0}, {2, 4, 8, 16}, raw_cells, 5, avail);
  EXPECT_GE(d.factor, 8);
}

TEST(AppPolicy, EntropySelectorLowEntropyReducesAggressively) {
  const AppDecision d = select_factor_by_entropy(
      1.0, {3.0, 6.0}, {2, 4, 8}, 1 << 18, 5, 1024 * MB);
  EXPECT_EQ(d.factor, 8);
}

TEST(AppPolicy, EntropySelectorRejectsUnsortedThresholds) {
  // The rung walk assumes ascending thresholds; unsorted input used to
  // silently mis-bucket instead of failing loudly.
  EXPECT_THROW(select_factor_by_entropy(4.0, {6.0, 3.0}, {2, 4, 8}, 1 << 18, 5,
                                        1024 * MB),
               ContractError);
}

// --- Middleware policy (eqs. 4-8) --------------------------------------------

PlacementInputs base_inputs() {
  PlacementInputs in;
  in.data_bytes = 100 * MB;
  in.insitu_mem_needed = 100 * MB;
  in.insitu_mem_available = 500 * MB;
  in.intransit_mem_free = 500 * MB;
  in.intransit_backlog_seconds = 0.0;
  in.est_insitu_seconds = 2.0;
  in.est_intransit_seconds = 8.0;
  return in;
}

TEST(MiddlewarePolicy, Case1MemoryForcedInSitu) {
  PlacementInputs in = base_inputs();
  in.intransit_mem_free = 10 * MB;  // staging cannot cache S_data
  const MiddlewareDecision d = decide_placement(in);
  EXPECT_EQ(d.placement, Placement::InSitu);
  EXPECT_EQ(d.reason, DecisionReason::MemoryForced);
  EXPECT_TRUE(d.feasible);
}

TEST(MiddlewarePolicy, Case1MemoryForcedInTransit) {
  PlacementInputs in = base_inputs();
  in.insitu_mem_available = 10 * MB;  // simulation nodes have no headroom
  const MiddlewareDecision d = decide_placement(in);
  EXPECT_EQ(d.placement, Placement::InTransit);
  EXPECT_EQ(d.reason, DecisionReason::MemoryForced);
}

TEST(MiddlewarePolicy, Case2IdleStagingGoesInTransit) {
  // Fig. 4, ts=1/2: in-transit processors idle -> place in-transit even
  // though the in-transit execution itself is slower.
  const MiddlewareDecision d = decide_placement(base_inputs());
  EXPECT_EQ(d.placement, Placement::InTransit);
  EXPECT_EQ(d.reason, DecisionReason::StagingIdle);
}

TEST(MiddlewarePolicy, Case3BusyStagingComparesEstimates) {
  // Fig. 4, ts=30: staging busy; in-situ is faster than waiting out the
  // backlog -> in-situ.
  PlacementInputs in = base_inputs();
  in.intransit_backlog_seconds = 5.0;  // > est_insitu_seconds = 2.0
  MiddlewareDecision d = decide_placement(in);
  EXPECT_EQ(d.placement, Placement::InSitu);
  EXPECT_EQ(d.reason, DecisionReason::InsituFasterThanBacklog);

  // Backlog nearly drained -> async send and process when cores free.
  in.intransit_backlog_seconds = 0.5;
  d = decide_placement(in);
  EXPECT_EQ(d.placement, Placement::InTransit);
  EXPECT_EQ(d.reason, DecisionReason::BacklogShorterThanInsitu);
}

TEST(MiddlewarePolicy, InfeasibleBothFlagsAndFallsBack) {
  PlacementInputs in = base_inputs();
  in.insitu_mem_available = 0;
  in.intransit_mem_free = 0;
  const MiddlewareDecision d = decide_placement(in);
  EXPECT_FALSE(d.feasible);
  EXPECT_EQ(d.placement, Placement::InSitu);
  EXPECT_EQ(d.reason, DecisionReason::InfeasibleBoth);
}

TEST(MiddlewarePolicy, ReasonNamesAreStable) {
  // The names feed the CSV traces; downstream plots key on them.
  EXPECT_STREQ(reason_name(DecisionReason::None), "");
  EXPECT_STREQ(reason_name(DecisionReason::InfeasibleBoth), "infeasible-both");
  EXPECT_STREQ(reason_name(DecisionReason::MemoryForced), "memory-forced");
  EXPECT_STREQ(reason_name(DecisionReason::StagingIdle), "staging-idle");
  EXPECT_STREQ(reason_name(DecisionReason::BacklogShorterThanInsitu),
               "backlog-shorter-than-insitu");
  EXPECT_STREQ(reason_name(DecisionReason::InsituFasterThanBacklog),
               "insitu-faster-than-backlog");
}

// --- Resource policy (eqs. 9-10) ---------------------------------------------

ResourceInputs resource_inputs() {
  ResourceInputs in;
  in.data_bytes = 1000 * MB;
  in.mem_per_core = 100 * MB;  // eq. 10 floor: 10 cores
  in.next_sim_seconds = 10.0;
  in.send_seconds = 0.5;
  in.recv_seconds = 0.5;
  in.min_cores = 1;
  in.max_cores = 1024;
  // T_intransit(M) = 400 / M: deadline 10.5 - 0.5 -> M >= 40.
  in.intransit_seconds = [](int m) { return 400.0 / m; };
  return in;
}

TEST(ResourcePolicy, MemoryFloorEq10) {
  ResourceInputs in = resource_inputs();
  in.intransit_seconds = [](int) { return 0.0; };  // deadline trivially met
  const ResourceDecision d = select_intransit_cores(in);
  EXPECT_EQ(d.memory_floor_cores, 10);
  EXPECT_EQ(d.cores, 10);
  EXPECT_TRUE(d.deadline_met);
}

TEST(ResourcePolicy, DeadlineDrivesAboveMemoryFloorEq9) {
  const ResourceDecision d = select_intransit_cores(resource_inputs());
  EXPECT_EQ(d.cores, 40);  // smallest M with 400/M + 0.5 <= 10.5
  EXPECT_TRUE(d.deadline_met);
}

TEST(ResourcePolicy, MinimalityOfM) {
  const ResourceDecision d = select_intransit_cores(resource_inputs());
  // One fewer core must violate the deadline.
  const ResourceInputs in = resource_inputs();
  EXPECT_GT(in.intransit_seconds(d.cores - 1) + in.recv_seconds,
            in.next_sim_seconds + in.send_seconds);
}

TEST(ResourcePolicy, UnmeetableDeadlineCapsAtMax) {
  ResourceInputs in = resource_inputs();
  in.max_cores = 16;  // 400/16 + 0.5 > 10.5
  const ResourceDecision d = select_intransit_cores(in);
  EXPECT_EQ(d.cores, 16);
  EXPECT_FALSE(d.deadline_met);
}

TEST(ResourcePolicy, RespectsMinCores) {
  ResourceInputs in = resource_inputs();
  in.data_bytes = 0;
  in.min_cores = 5;
  in.intransit_seconds = [](int) { return 0.0; };
  EXPECT_EQ(select_intransit_cores(in).cores, 5);
}

TEST(ResourcePolicy, ValidatesInputs) {
  ResourceInputs in = resource_inputs();
  in.mem_per_core = 0;
  EXPECT_THROW(select_intransit_cores(in), ContractError);
  in = resource_inputs();
  in.intransit_seconds = nullptr;
  EXPECT_THROW(select_intransit_cores(in), ContractError);
  in = resource_inputs();
  in.max_cores = 0;
  EXPECT_THROW(select_intransit_cores(in), ContractError);
}

// --- Monitor -----------------------------------------------------------------

TEST(Monitor, EwmaEstimatorScalesByCellsAndCores) {
  MonitorConfig cfg;
  cfg.parallel_efficiency = 1.0;  // exact scaling for the test
  Monitor m(cfg);
  m.record_analysis({0, Placement::InSitu, 1000, 10, 2.0});
  // cost = 2.0 * 10 / 1000 = 0.02 s per cell per core.
  EXPECT_NEAR(m.estimate_analysis_seconds(Placement::InSitu, 2000, 10), 4.0, 1e-9);
  EXPECT_NEAR(m.estimate_analysis_seconds(Placement::InSitu, 1000, 20), 1.0, 1e-9);
}

TEST(Monitor, PlacementStreamsAreSeparate) {
  Monitor m;
  m.record_analysis({0, Placement::InSitu, 1000, 1, 1.0});
  m.record_analysis({0, Placement::InTransit, 1000, 1, 7.0});
  EXPECT_LT(m.estimate_analysis_seconds(Placement::InSitu, 1000, 1),
            m.estimate_analysis_seconds(Placement::InTransit, 1000, 1));
}

TEST(Monitor, LastValueVsEwmaAfterSpike) {
  MonitorConfig last_cfg;
  last_cfg.estimator = EstimatorKind::LastValue;
  MonitorConfig ewma_cfg;
  ewma_cfg.estimator = EstimatorKind::Ewma;
  ewma_cfg.ewma_alpha = 0.3;
  Monitor last(last_cfg), ewma(ewma_cfg);
  for (Monitor* m : {&last, &ewma}) {
    for (int i = 0; i < 10; ++i) {
      m->record_analysis({i, Placement::InSitu, 1000, 1, 1.0});
    }
    m->record_analysis({10, Placement::InSitu, 1000, 1, 10.0});  // spike
  }
  // Last-value chases the spike; EWMA stays closer to the history.
  EXPECT_GT(last.estimate_analysis_seconds(Placement::InSitu, 1000, 1), 9.0);
  EXPECT_LT(ewma.estimate_analysis_seconds(Placement::InSitu, 1000, 1), 5.0);
}

TEST(Monitor, OracleOverridesWhenInjected) {
  MonitorConfig cfg;
  cfg.estimator = EstimatorKind::Oracle;
  Monitor m(cfg);
  m.set_oracle(3.25, 7.5);
  EXPECT_DOUBLE_EQ(m.estimate_analysis_seconds(Placement::InSitu, 999, 3), 3.25);
  EXPECT_DOUBLE_EQ(m.estimate_analysis_seconds(Placement::InTransit, 999, 3), 7.5);
}

TEST(Monitor, SamplingPeriod) {
  MonitorConfig cfg;
  cfg.sampling_period = 5;
  Monitor m(cfg);
  EXPECT_TRUE(m.should_sample(0));
  EXPECT_FALSE(m.should_sample(3));
  EXPECT_TRUE(m.should_sample(10));
}

TEST(Monitor, SimEstimateScalesByCellRatio) {
  Monitor m;
  m.record_sim_step(0, 4.0, 1000);
  EXPECT_NEAR(m.estimate_sim_seconds(2000), 8.0, 1e-12);
  EXPECT_NEAR(m.estimate_sim_seconds(500), 2.0, 1e-12);
}

// --- AdaptationEngine integration -------------------------------------------

EngineHooks test_hooks() {
  EngineHooks hooks;
  // Analysis: 1e-6 s per cell per core (linear).
  hooks.analysis_seconds = [](Placement, std::size_t cells, int cores) {
    return 1e-6 * static_cast<double>(cells) / cores;
  };
  hooks.send_seconds = [](std::size_t bytes) { return 1e-9 * bytes; };
  hooks.recv_seconds = [](std::size_t bytes, int cores) {
    return 1e-9 * static_cast<double>(bytes) / cores;
  };
  hooks.next_sim_seconds = [](std::size_t cells) { return 1e-5 * cells; };
  hooks.insitu_analysis_mem = [](std::size_t bytes) { return bytes; };
  return hooks;
}

OperationalState test_state() {
  OperationalState s;
  s.step = 0;
  s.raw_cells = 1 << 20;
  s.raw_bytes = (1 << 20) * 5 * sizeof(double);
  s.ncomp = 5;
  s.sim_cores = 1024;
  s.insitu_mem_available = 400 * MB;
  s.intransit_cores = 64;
  s.intransit_mem_free = 800 * MB;
  s.intransit_mem_per_core = 100 * MB;
  s.intransit_backlog_seconds = 0.0;
  return s;
}

TEST(AdaptationEngine, GlobalPlanExecutesAllLayersLeavesFirst) {
  EngineConfig cfg;
  cfg.hints.factor_phases = {{0, {2, 4}}};
  const AdaptationEngine engine(cfg, test_hooks());
  const EngineDecisions d = engine.adapt(test_state());
  ASSERT_EQ(d.executed.size(), 3u);
  EXPECT_EQ(d.executed[0], Layer::Application);
  EXPECT_EQ(d.executed[1], Layer::Resource);
  EXPECT_EQ(d.executed[2], Layer::Middleware);
  ASSERT_TRUE(d.app.has_value());
  EXPECT_EQ(d.app->factor, 2);
  // Effective data shrank by 2^3.
  EXPECT_EQ(d.effective_cells, (std::size_t{1} << 20) / 8);
  ASSERT_TRUE(d.resource.has_value());
  ASSERT_TRUE(d.middleware.has_value());
}

TEST(AdaptationEngine, MiddlewareOnlyLeavesDataUntouched) {
  EngineConfig cfg;
  cfg.enable_application = false;
  cfg.enable_resource = false;
  const AdaptationEngine engine(cfg, test_hooks());
  const EngineDecisions d = engine.adapt(test_state());
  ASSERT_EQ(d.executed.size(), 1u);
  EXPECT_EQ(d.executed[0], Layer::Middleware);
  EXPECT_FALSE(d.app.has_value());
  EXPECT_EQ(d.effective_bytes, test_state().raw_bytes);
  EXPECT_EQ(d.intransit_cores, 64);
}

TEST(AdaptationEngine, UtilizationObjectiveExcludesMiddleware) {
  EngineConfig cfg;
  cfg.preferences.objective = Objective::MaximizeResourceUtilization;
  cfg.hints.factor_phases = {{0, {2}}};
  const AdaptationEngine engine(cfg, test_hooks());
  const EngineDecisions d = engine.adapt(test_state());
  ASSERT_EQ(d.executed.size(), 2u);
  EXPECT_EQ(d.executed[0], Layer::Application);
  EXPECT_EQ(d.executed[1], Layer::Resource);
  EXPECT_FALSE(d.middleware.has_value());
}

TEST(AdaptationEngine, MaxAcceptableFactorCapsHints) {
  EngineConfig cfg;
  cfg.hints.factor_phases = {{0, {2, 4, 8, 16}}};
  cfg.preferences.max_acceptable_factor = 4;
  OperationalState s = test_state();
  s.insitu_mem_available = 1;  // would otherwise push to 16
  const AdaptationEngine engine(cfg, test_hooks());
  const EngineDecisions d = engine.adapt(s);
  ASSERT_TRUE(d.app.has_value());
  EXPECT_LE(d.app->factor, 4);
}

TEST(AdaptationEngine, RequiresAllHooks) {
  EngineHooks broken = test_hooks();
  broken.send_seconds = nullptr;
  EXPECT_THROW(AdaptationEngine({}, broken), ContractError);
}

}  // namespace
}  // namespace xl::runtime
