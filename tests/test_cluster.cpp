// Tests for the cluster substrate: the deterministic event queue, machine
// specs, the kernel/transfer cost models, and the eq. 12 utilization trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/cost_model.hpp"
#include "cluster/event_queue.hpp"
#include "cluster/machine.hpp"
#include "cluster/trace.hpp"

namespace xl::cluster {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run_until_empty();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBreakBySchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run_until_empty();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] {
    ++fired;
    q.schedule_in(0.5, [&] { ++fired; });
  });
  q.run_until_empty();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 1.5);
}

TEST(EventQueue, RunUntilAdvancesClockWithoutOvershooting) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(5.0, [&] { ++fired; });
  q.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RejectsSchedulingInThePast) {
  EventQueue q;
  q.schedule_at(2.0, [] {});
  q.run_until_empty();
  EXPECT_THROW(q.schedule_at(1.0, [] {}), ContractError);
  EXPECT_THROW(q.schedule_in(-1.0, [] {}), ContractError);
}

TEST(Machine, PaperSpecs) {
  const MachineSpec bgp = intrepid();
  EXPECT_EQ(bgp.cores_per_node, 4);
  EXPECT_EQ(bgp.mem_per_core_bytes(), std::size_t{512} << 20);  // 500MB-class
  const MachineSpec xk7 = titan();
  EXPECT_EQ(xk7.cores_per_node, 16);
  EXPECT_EQ(xk7.mem_per_core_bytes(), std::size_t{2} << 30);
  EXPECT_GT(xk7.core_flops, bgp.core_flops);
  EXPECT_GT(xk7.network.link_bandwidth_Bps, bgp.network.link_bandwidth_Bps);
}

TEST(CostModel, KernelTimeScalesWithCellsAndCores) {
  const CostModel cost(test_machine());
  const double t1 = cost.kernel_seconds(100.0, 1'000'000, 1);
  const double t2 = cost.kernel_seconds(100.0, 2'000'000, 1);
  EXPECT_NEAR(t2, 2.0 * t1, 1e-12);
  const double t_p = cost.kernel_seconds(100.0, 1'000'000, 16);
  EXPECT_LT(t_p, t1 / 8.0);   // parallel speedup...
  EXPECT_GT(t_p, t1 / 16.0);  // ...but sublinear (efficiency < 1)
}

TEST(CostModel, SimStepEulerCostlierThanAdvection) {
  const CostModel cost(test_machine());
  EXPECT_GT(cost.sim_step_seconds(1 << 20, 8, true),
            cost.sim_step_seconds(1 << 20, 8, false));
}

TEST(CostModel, MarchingCubesChargesScanPlusActive) {
  const CostModel cost(test_machine());
  const double scan_only = cost.marching_cubes_seconds(1 << 20, 0, 4);
  const double with_active = cost.marching_cubes_seconds(1 << 20, 1 << 14, 4);
  EXPECT_GT(with_active, scan_only);
}

TEST(CostModel, TransferBoundedBySlowerSide) {
  const CostModel cost(test_machine());
  const std::size_t GB = std::size_t{1} << 30;
  const double wide = cost.transfer_seconds(GB, 64, 64);
  const double narrow_rx = cost.transfer_seconds(GB, 64, 4);
  EXPECT_NEAR(narrow_rx, 16.0 * wide, 0.01 * narrow_rx);
  EXPECT_GT(cost.transfer_seconds(1, 1, 1), 0.0);  // latency floor
  EXPECT_THROW(cost.transfer_seconds(GB, 0, 4), ContractError);
}

TEST(CostModel, FasterMachineRunsFaster) {
  const CostModel slow(intrepid());
  const CostModel fast(titan());
  EXPECT_GT(slow.sim_step_seconds(1 << 22, 64, true),
            fast.sim_step_seconds(1 << 22, 64, true));
}

TEST(StagingTrace, UtilizationEfficiencyEq12) {
  StagingTrace trace;
  // Step 0: 4 cores busy 1s each over a 2s window -> 4/8.
  trace.record({0, 4, 4.0, 2.0});
  // Step 1: 4 cores busy 2s each over a 2s window -> 8/8.
  trace.record({1, 4, 8.0, 2.0});
  EXPECT_DOUBLE_EQ(trace.utilization_efficiency(), 12.0 / 16.0);
}

TEST(StagingTrace, EmptyTraceIsZero) {
  StagingTrace trace;
  EXPECT_DOUBLE_EQ(trace.utilization_efficiency(), 0.0);
}

TEST(StagingTrace, UsedFraction) {
  StagingStepRecord rec{3, 128, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(StagingTrace::used_fraction(rec, 256), 0.5);
  EXPECT_THROW(StagingTrace::used_fraction(rec, 0), ContractError);
}

TEST(StagingTrace, RejectsNegativeRecords) {
  StagingTrace trace;
  EXPECT_THROW(trace.record({0, -1, 0.0, 1.0}), ContractError);
  EXPECT_THROW(trace.record({0, 1, 0.0, -1.0}), ContractError);
}

// --- ladder-queue stress and contract tests ---------------------------------

/// splitmix64 finalizer — the sanctioned deterministic stand-in for
/// randomness in tests.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

TEST(EventQueue, LadderStressMatchesStableSortReference) {
  // Enough events to spawn rungs (> kBucketThreshold) with hash-spread
  // timestamps including deliberate collisions. The firing order must equal
  // a stable sort by time — stable sort on scheduling order IS the
  // (time, seq) tie-break contract.
  constexpr std::size_t kN = 20000;
  EventQueue q;
  std::vector<double> times(kN);
  std::vector<std::size_t> fired;
  fired.reserve(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    // Coarse quantization forces plenty of equal timestamps.
    times[i] = 1.0 + static_cast<double>(mix64(i) % 4096) / 256.0;
    q.schedule_at(times[i], [&fired, i] { fired.push_back(i); });
  }
  std::vector<std::size_t> want(kN);
  for (std::size_t i = 0; i < kN; ++i) want[i] = i;
  std::stable_sort(want.begin(), want.end(),
                   [&](std::size_t a, std::size_t b) { return times[a] < times[b]; });
  q.run_until_empty();
  ASSERT_EQ(fired.size(), kN);
  EXPECT_EQ(fired, want);
  EXPECT_GE(q.stats().rung_spawns, 1u);  // the ladder actually laddered
  EXPECT_EQ(q.stats().scheduled, kN);
  EXPECT_EQ(q.stats().fired, kN);
}

TEST(EventQueue, AllEqualTimestampsFireInSchedulingOrderAtLadderScale) {
  // A degenerate batch (every event at one timestamp) cannot be subdivided
  // by time; the ladder must fall back to a direct seq-ordered sort instead
  // of recursing forever.
  constexpr std::size_t kN = 5000;
  EventQueue q;
  std::vector<std::size_t> fired;
  fired.reserve(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    q.schedule_at(7.0, [&fired, i] { fired.push_back(i); });
  }
  q.run_until_empty();
  ASSERT_EQ(fired.size(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(fired[i], i) << "seq tie-break broken at position " << i;
  }
  EXPECT_GE(q.stats().direct_sorts, 1u);
}

TEST(EventQueue, MidDrainSameTimestampSchedulingFiresAfterPendingTies) {
  // An event scheduling another event at its own timestamp: the new event's
  // seq is larger than every already-pending tie, so it fires after them —
  // even though it arrives while the tie group is mid-drain.
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(1.0, [&] {
    order.push_back(0);
    q.schedule_at(1.0, [&] { order.push_back(9); });  // same-timestamp insert
  });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(1.0, [&] { order.push_back(2); });
  q.schedule_at(2.0, [&] { order.push_back(3); });
  q.run_until_empty();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 9, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, RunUntilOnEmptyQueueStillAdvancesClock) {
  // The clock observes the passage of simulated time even with nothing to
  // fire — and never moves backwards.
  EventQueue q;
  q.run_until(5.0);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
  q.run_until(3.0);  // earlier horizon: a no-op, not a rewind
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
  EXPECT_TRUE(q.empty());
  // After idle advancement, scheduling relative to the new clock works.
  int fired = 0;
  q.schedule_in(1.0, [&] { ++fired; });
  q.run_until_empty();
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 6.0);
}

TEST(EventQueue, SchedulingAtExactlyNowIsAllowed) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] {
    ++fired;
    q.schedule_at(q.now(), [&] { ++fired; });  // t == now(): legal boundary
  });
  q.run_until_empty();
  EXPECT_EQ(fired, 2);
  EXPECT_THROW(q.schedule_at(0.5, [] {}), ContractError);
}

TEST(EventQueue, SelfSchedulingSteadyStateReusesArenas) {
  // A self-scheduling chain drains and refills the ladder repeatedly; after
  // warmup the pop/schedule cycle must run without growing the handler arena
  // (heap_handlers stays 0 for small closures; pending never exceeds 1).
  EventQueue q;
  std::uint64_t count = 0;
  struct Chain {
    EventQueue* q;
    std::uint64_t* count;
    std::uint64_t left;
    void operator()() const {
      ++*count;
      if (left > 0) q->schedule_in(0.25, Chain{q, count, left - 1});
    }
  };
  q.schedule_at(0.0, Chain{&q, &count, 999});
  q.run_until_empty();
  EXPECT_EQ(count, 1000u);
  EXPECT_EQ(q.stats().heap_handlers, 0u);
  EXPECT_EQ(q.stats().peak_pending, 1u);
  EXPECT_DOUBLE_EQ(q.now(), 0.25 * 999);
}

TEST(EventHandler, OversizedClosuresFallBackToHeapAndStillFire) {
  // A closure larger than EventHandler::kInlineBytes takes the heap path;
  // stats record it, behavior is unchanged.
  EventQueue q;
  double sum = 0.0;
  double big[32] = {};  // 256 bytes captured by value
  big[0] = 1.5;
  big[31] = 2.5;
  q.schedule_at(1.0, [&sum, big] { sum = big[0] + big[31]; });
  q.run_until_empty();
  EXPECT_DOUBLE_EQ(sum, 4.0);
  EXPECT_EQ(q.stats().heap_handlers, 1u);
}

TEST(EventHandler, MoveOnlyCapturesAreSupported) {
  // std::function requires copyable targets; the engine's EventHandler does
  // not — move-only captures (unique_ptr payloads) schedule directly.
  EventQueue q;
  int got = 0;
  auto payload = std::make_unique<int>(42);
  q.schedule_at(1.0, [&got, p = std::move(payload)] { got = *p; });
  q.run_until_empty();
  EXPECT_EQ(got, 42);
}

TEST(RankTable, ResetZeroesAndTotalsAggregate) {
  RankTable table(4);
  table[1].events = 3;
  table[1].bytes_sent = 100;
  table[2].events = 2;
  table[2].bytes_sent = 50;
  table[3].busy_until = 7.5;
  EXPECT_EQ(table.total_events(), 5u);
  EXPECT_EQ(table.total_bytes_sent(), 150u);
  EXPECT_DOUBLE_EQ(table.max_busy_until(), 7.5);
  table.reset(2);  // shrink: recycled arena, fresh zero records
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.total_events(), 0u);
  EXPECT_DOUBLE_EQ(table.max_busy_until(), 0.0);
}

TEST(RankTable, AtChecksBounds) {
  RankTable table(2);
  EXPECT_NO_THROW(table.at(1));
  EXPECT_THROW(table.at(2), ContractError);
}

}  // namespace
}  // namespace xl::cluster
