// Tests for the cluster substrate: the deterministic event queue, machine
// specs, the kernel/transfer cost models, and the eq. 12 utilization trace.
#include <gtest/gtest.h>

#include "cluster/cost_model.hpp"
#include "cluster/event_queue.hpp"
#include "cluster/machine.hpp"
#include "cluster/trace.hpp"

namespace xl::cluster {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run_until_empty();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBreakBySchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run_until_empty();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] {
    ++fired;
    q.schedule_in(0.5, [&] { ++fired; });
  });
  q.run_until_empty();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 1.5);
}

TEST(EventQueue, RunUntilAdvancesClockWithoutOvershooting) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(5.0, [&] { ++fired; });
  q.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RejectsSchedulingInThePast) {
  EventQueue q;
  q.schedule_at(2.0, [] {});
  q.run_until_empty();
  EXPECT_THROW(q.schedule_at(1.0, [] {}), ContractError);
  EXPECT_THROW(q.schedule_in(-1.0, [] {}), ContractError);
}

TEST(Machine, PaperSpecs) {
  const MachineSpec bgp = intrepid();
  EXPECT_EQ(bgp.cores_per_node, 4);
  EXPECT_EQ(bgp.mem_per_core_bytes(), std::size_t{512} << 20);  // 500MB-class
  const MachineSpec xk7 = titan();
  EXPECT_EQ(xk7.cores_per_node, 16);
  EXPECT_EQ(xk7.mem_per_core_bytes(), std::size_t{2} << 30);
  EXPECT_GT(xk7.core_flops, bgp.core_flops);
  EXPECT_GT(xk7.network.link_bandwidth_Bps, bgp.network.link_bandwidth_Bps);
}

TEST(CostModel, KernelTimeScalesWithCellsAndCores) {
  const CostModel cost(test_machine());
  const double t1 = cost.kernel_seconds(100.0, 1'000'000, 1);
  const double t2 = cost.kernel_seconds(100.0, 2'000'000, 1);
  EXPECT_NEAR(t2, 2.0 * t1, 1e-12);
  const double t_p = cost.kernel_seconds(100.0, 1'000'000, 16);
  EXPECT_LT(t_p, t1 / 8.0);   // parallel speedup...
  EXPECT_GT(t_p, t1 / 16.0);  // ...but sublinear (efficiency < 1)
}

TEST(CostModel, SimStepEulerCostlierThanAdvection) {
  const CostModel cost(test_machine());
  EXPECT_GT(cost.sim_step_seconds(1 << 20, 8, true),
            cost.sim_step_seconds(1 << 20, 8, false));
}

TEST(CostModel, MarchingCubesChargesScanPlusActive) {
  const CostModel cost(test_machine());
  const double scan_only = cost.marching_cubes_seconds(1 << 20, 0, 4);
  const double with_active = cost.marching_cubes_seconds(1 << 20, 1 << 14, 4);
  EXPECT_GT(with_active, scan_only);
}

TEST(CostModel, TransferBoundedBySlowerSide) {
  const CostModel cost(test_machine());
  const std::size_t GB = std::size_t{1} << 30;
  const double wide = cost.transfer_seconds(GB, 64, 64);
  const double narrow_rx = cost.transfer_seconds(GB, 64, 4);
  EXPECT_NEAR(narrow_rx, 16.0 * wide, 0.01 * narrow_rx);
  EXPECT_GT(cost.transfer_seconds(1, 1, 1), 0.0);  // latency floor
  EXPECT_THROW(cost.transfer_seconds(GB, 0, 4), ContractError);
}

TEST(CostModel, FasterMachineRunsFaster) {
  const CostModel slow(intrepid());
  const CostModel fast(titan());
  EXPECT_GT(slow.sim_step_seconds(1 << 22, 64, true),
            fast.sim_step_seconds(1 << 22, 64, true));
}

TEST(StagingTrace, UtilizationEfficiencyEq12) {
  StagingTrace trace;
  // Step 0: 4 cores busy 1s each over a 2s window -> 4/8.
  trace.record({0, 4, 4.0, 2.0});
  // Step 1: 4 cores busy 2s each over a 2s window -> 8/8.
  trace.record({1, 4, 8.0, 2.0});
  EXPECT_DOUBLE_EQ(trace.utilization_efficiency(), 12.0 / 16.0);
}

TEST(StagingTrace, EmptyTraceIsZero) {
  StagingTrace trace;
  EXPECT_DOUBLE_EQ(trace.utilization_efficiency(), 0.0);
}

TEST(StagingTrace, UsedFraction) {
  StagingStepRecord rec{3, 128, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(StagingTrace::used_fraction(rec, 256), 0.5);
  EXPECT_THROW(StagingTrace::used_fraction(rec, 0), ContractError);
}

TEST(StagingTrace, RejectsNegativeRecords) {
  StagingTrace trace;
  EXPECT_THROW(trace.record({0, -1, 0.0, 1.0}), ContractError);
  EXPECT_THROW(trace.record({0, 1, 0.0, -1.0}), ContractError);
}

}  // namespace
}  // namespace xl::cluster
