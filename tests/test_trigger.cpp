// Tests for the percentile-sampling trigger layer: the TriggerDetector's
// determinism contract, the Monitor's policy gate, and the workflow-level
// guarantees (FixedPeriod byte-identity with the legacy cadence, Percentile
// byte-identity across reruns and substrates, the Hybrid max-interval cap).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/machine.hpp"
#include "common/contract.hpp"
#include "runtime/monitor.hpp"
#include "runtime/trigger.hpp"
#include "workflow/coupled_workflow.hpp"
#include "workflow/execution_substrate.hpp"
#include "workflow/observer.hpp"
#include "workflow/trace_io.hpp"

namespace xl {
namespace {

using namespace xl::runtime;
using namespace xl::workflow;

TriggerInputs inputs(std::int64_t cells, std::size_t bytes, double entropy) {
  TriggerInputs in;
  in.tagged_cells = cells;
  in.staged_bytes = bytes;
  in.structure_entropy = entropy;
  return in;
}

// --- TriggerDetector ---------------------------------------------------------

TEST(TriggerDetector, ValidatesConfig) {
  TriggerConfig c;
  c.quantile = 0.0;
  EXPECT_THROW(TriggerDetector{c}, ContractError);
  c = {};
  c.quantile = 1.0;
  EXPECT_THROW(TriggerDetector{c}, ContractError);
  c = {};
  c.window = 1;
  EXPECT_THROW(TriggerDetector{c}, ContractError);
  c = {};
  c.sample_rate = 0.0;
  EXPECT_THROW(TriggerDetector{c}, ContractError);
  c = {};
  c.sample_rate = 1.5;
  EXPECT_THROW(TriggerDetector{c}, ContractError);
  c = {};
  c.max_interval = 0;
  EXPECT_THROW(TriggerDetector{c}, ContractError);
}

TEST(TriggerDetector, FirstStepAlwaysFires) {
  TriggerConfig c;
  c.policy = TriggerPolicy::Percentile;
  TriggerDetector d(c);
  const TriggerDecision dec = d.observe(0, inputs(1000, 8000, 1.0));
  EXPECT_TRUE(dec.fire);
  EXPECT_EQ(d.triggers_fired(), 1);
}

TEST(TriggerDetector, QuiescentSequenceNeverRefires) {
  // An all-equal input stream pins the indicator at exactly 0; the strict >
  // comparison means the noise floor never triggers itself.
  TriggerConfig c;
  c.policy = TriggerPolicy::Percentile;
  c.window = 4;
  TriggerDetector d(c);
  for (int s = 0; s < 20; ++s) d.observe(s, inputs(1000, 8000, 1.0));
  EXPECT_EQ(d.triggers_fired(), 1);  // the warmup fire only.
  EXPECT_EQ(d.steps_suppressed(), 19);
}

TEST(TriggerDetector, ShockAboveTrailingQuantileFires) {
  TriggerConfig c;
  c.policy = TriggerPolicy::Percentile;
  c.window = 4;
  TriggerDetector d(c);
  for (int s = 0; s < 10; ++s) d.observe(s, inputs(1000, 8000, 1.0));
  const int before = d.triggers_fired();
  // A 50% cell jump against a zero-indicator window must fire.
  const TriggerDecision dec = d.observe(10, inputs(1500, 12000, 1.0));
  EXPECT_TRUE(dec.fire);
  EXPECT_GT(dec.indicator, dec.threshold);
  EXPECT_EQ(d.triggers_fired(), before + 1);
}

TEST(TriggerDetector, EntropyShiftAloneFires) {
  // Cells and bytes frozen; only the structure entropy moves. The indicator
  // is the max over the three signals, so this must still arm.
  TriggerConfig c;
  c.policy = TriggerPolicy::Percentile;
  c.window = 4;
  TriggerDetector d(c);
  for (int s = 0; s < 8; ++s) d.observe(s, inputs(1000, 8000, 1.0));
  const TriggerDecision dec = d.observe(8, inputs(1000, 8000, 1.8));
  EXPECT_TRUE(dec.fire);
}

TEST(TriggerDetector, HybridCapsTheQuietInterval) {
  TriggerConfig c;
  c.policy = TriggerPolicy::Hybrid;
  c.window = 4;
  c.max_interval = 5;
  TriggerDetector d(c);
  std::vector<int> fired;
  for (int s = 0; s < 21; ++s) {
    if (d.observe(s, inputs(1000, 8000, 1.0)).fire) fired.push_back(s);
  }
  ASSERT_GE(fired.size(), 2u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i] - fired[i - 1], c.max_interval);
  }
  // The cap fire is flagged as capped, not armed-by-indicator.
  TriggerDetector d2(c);
  d2.observe(0, inputs(1000, 8000, 1.0));
  TriggerDecision last;
  for (int s = 1; s <= c.max_interval; ++s) {
    last = d2.observe(s, inputs(1000, 8000, 1.0));
  }
  EXPECT_TRUE(last.fire);
  EXPECT_TRUE(last.capped);
}

TEST(TriggerDetector, SubsampledWindowIsDeterministic) {
  // The window membership draw is counter-keyed on (seed, step): two
  // detectors fed the same sequence make identical decisions, and a
  // different seed is allowed to differ.
  TriggerConfig c;
  c.policy = TriggerPolicy::Percentile;
  c.window = 6;
  c.sample_rate = 0.5;
  TriggerDetector a(c), b(c);
  bool any_skipped = false;
  for (int s = 0; s < 64; ++s) {
    const auto in = inputs(1000 + 37 * (s % 11), 8000, 1.0 + 0.01 * (s % 7));
    const TriggerDecision da = a.observe(s, in);
    const TriggerDecision db = b.observe(s, in);
    EXPECT_EQ(da.fire, db.fire) << "step " << s;
    EXPECT_EQ(da.sampled, db.sampled) << "step " << s;
    EXPECT_DOUBLE_EQ(da.indicator, db.indicator);
    EXPECT_DOUBLE_EQ(da.threshold, db.threshold);
    any_skipped = any_skipped || !da.sampled;
  }
  EXPECT_TRUE(any_skipped);  // rate 0.5 over 64 steps must skip something.
}

// --- Monitor gate ------------------------------------------------------------

TEST(MonitorTrigger, FixedPeriodIgnoresDetector) {
  MonitorConfig cfg;
  cfg.sampling_period = 3;
  Monitor m(cfg);
  // No observe_step calls at all: the fixed cadence stands alone.
  EXPECT_TRUE(m.should_sample(0));
  EXPECT_FALSE(m.should_sample(2));
  EXPECT_TRUE(m.should_sample(3));
  EXPECT_EQ(m.trigger().triggers_fired(), 0);
}

TEST(MonitorTrigger, PercentileGateFollowsObserveStep) {
  MonitorConfig cfg;
  cfg.sampling_period = 1;
  cfg.trigger.policy = TriggerPolicy::Percentile;
  cfg.trigger.window = 4;
  Monitor m(cfg);
  EXPECT_TRUE(m.observe_step(0, inputs(1000, 8000, 1.0)).fire);
  EXPECT_TRUE(m.should_sample(0));
  for (int s = 1; s < 6; ++s) {
    EXPECT_FALSE(m.observe_step(s, inputs(1000, 8000, 1.0)).fire);
    EXPECT_FALSE(m.should_sample(s));
  }
  EXPECT_TRUE(m.observe_step(6, inputs(2000, 16000, 1.0)).fire);
  EXPECT_TRUE(m.should_sample(6));
}

TEST(MonitorTrigger, OracleClearsOnRequest) {
  MonitorConfig cfg;
  cfg.estimator = EstimatorKind::Oracle;
  Monitor m(cfg);
  m.record_analysis({0, Placement::InSitu, 1000, 1, 2.0});
  m.record_analysis({0, Placement::InTransit, 1000, 4, 4.0});
  m.set_oracle(3.25, 7.5);
  EXPECT_DOUBLE_EQ(m.estimate_analysis_seconds(Placement::InSitu, 1000, 1), 3.25);
  m.clear_oracle();
  // After the clear the estimator falls back to recorded samples instead of
  // leaking the stale per-step truth.
  EXPECT_DOUBLE_EQ(m.estimate_analysis_seconds(Placement::InSitu, 1000, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.estimate_analysis_seconds(Placement::InTransit, 1000, 4), 4.0);
}

TEST(MonitorTrigger, SimEstimateFallsBackToPriorBeforeFirstStep) {
  MonitorConfig cfg;
  cfg.prior_cost = 2.0e-6;
  Monitor m(cfg);
  // Before any record_sim_step the estimate must not be 0 (a zero next-step
  // estimate tells the middleware policy every transfer hides for free).
  EXPECT_DOUBLE_EQ(m.estimate_sim_seconds(1000), 2.0e-3);
  m.record_sim_step(0, 4.0, 1000);
  EXPECT_NEAR(m.estimate_sim_seconds(2000), 8.0, 1e-12);
}

// --- Workflow-level guarantees ----------------------------------------------

WorkflowConfig workflow_config() {
  WorkflowConfig c;
  c.machine = cluster::titan();
  c.sim_cores = 128;
  c.staging_cores = 8;
  c.steps = 20;
  c.mode = Mode::Global;
  c.geometry.base_domain = mesh::Box::domain({128, 64, 64});
  c.geometry.nranks = 128;
  c.hints.factor_phases = {{0, {2, 4}}};
  c.monitor.sampling_period = 1;
  c.monitor.trigger.window = 4;
  return c;
}

std::string events_csv(const WorkflowConfig& config, ExecutionSubstrate& substrate,
                       WorkflowResult* out = nullptr) {
  CoupledWorkflow wf(config);
  EventLog log;
  wf.set_observer(&log);
  const WorkflowResult r = wf.run_on(substrate);
  if (out != nullptr) *out = r;
  std::ostringstream os;
  write_events_csv(os, log);
  return os.str();
}

TEST(WorkflowTrigger, FixedPeriodEmitsNoTriggerEvents) {
  WorkflowConfig config = workflow_config();
  AnalyticSubstrate substrate;
  WorkflowResult result;
  const std::string csv = events_csv(config, substrate, &result);
  EXPECT_EQ(result.triggers_fired, 0);
  EXPECT_EQ(result.steps_suppressed, 0);
  EXPECT_EQ(csv.find("trigger-fired"), std::string::npos);
  EXPECT_EQ(csv.find("trigger-suppressed"), std::string::npos);
}

TEST(WorkflowTrigger, PercentileIdenticalAcrossRerunsAndSubstrates) {
  WorkflowConfig config = workflow_config();
  config.monitor.trigger.policy = TriggerPolicy::Percentile;
  config.monitor.trigger.sample_rate = 0.7;  // exercise the seeded draws.
  AnalyticSubstrate a1, a2;
  EventQueueSubstrate des;
  WorkflowResult result;
  const std::string csv1 = events_csv(config, a1, &result);
  const std::string csv2 = events_csv(config, a2);
  const std::string csv3 = events_csv(config, des);
  EXPECT_EQ(csv1, csv2);
  EXPECT_EQ(csv1, csv3);
  EXPECT_GT(result.triggers_fired, 0);
  EXPECT_GT(result.steps_suppressed, 0);
  EXPECT_EQ(result.triggers_fired + result.steps_suppressed, config.steps);
}

TEST(WorkflowTrigger, HybridNeverExceedsMaxInterval) {
  WorkflowConfig config = workflow_config();
  config.monitor.trigger.policy = TriggerPolicy::Hybrid;
  config.monitor.trigger.max_interval = 4;
  CoupledWorkflow wf(config);
  EventLog log;
  wf.set_observer(&log);
  wf.run();
  std::vector<int> fired;
  for (const WorkflowEvent& e : log.events()) {
    if (e.kind == EventKind::TriggerFired) fired.push_back(e.step);
  }
  ASSERT_GE(fired.size(), 2u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i] - fired[i - 1], config.monitor.trigger.max_interval);
  }
}

TEST(WorkflowTrigger, StepEndCarriesCumulativeCounters) {
  WorkflowConfig config = workflow_config();
  config.monitor.trigger.policy = TriggerPolicy::Percentile;
  CoupledWorkflow wf(config);
  EventLog log;
  wf.set_observer(&log);
  const WorkflowResult result = wf.run();
  int last_fired = -1, last_suppressed = -1;
  for (const WorkflowEvent& e : log.events()) {
    if (e.kind == EventKind::StepEnd || e.kind == EventKind::RunEnd) {
      // Cumulative and monotonic along the stream.
      EXPECT_GE(e.triggers_fired, last_fired == -1 ? 0 : last_fired);
      last_fired = e.triggers_fired;
      last_suppressed = e.steps_suppressed;
    }
  }
  EXPECT_EQ(last_fired, result.triggers_fired);
  EXPECT_EQ(last_suppressed, result.steps_suppressed);
}

}  // namespace
}  // namespace xl
