// Tests for the visualization service: marching-cubes correctness (surface
// area, closedness, degenerate cases), OBJ output, and AMR-masked extraction.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "amr/hierarchy.hpp"
#include "viz/amr_isosurface.hpp"
#include "viz/marching_cubes.hpp"
#include "viz/mc_tables.hpp"
#include "viz/mesh_io.hpp"

namespace xl::viz {
namespace {

using mesh::Box;
using mesh::BoxIterator;
using mesh::Fab;
using mesh::IntVect;

double triangle_area(const Vec3& a, const Vec3& b, const Vec3& c) {
  const double ux = b.x - a.x, uy = b.y - a.y, uz = b.z - a.z;
  const double vx = c.x - a.x, vy = c.y - a.y, vz = c.z - a.z;
  const double cx = uy * vz - uz * vy;
  const double cy = uz * vx - ux * vz;
  const double cz = ux * vy - uy * vx;
  return 0.5 * std::sqrt(cx * cx + cy * cy + cz * cz);
}

double mesh_area(const TriangleMesh& m) {
  double area = 0.0;
  for (std::size_t t = 0; t < m.triangle_count(); ++t) {
    area += triangle_area(m.vertices[3 * t], m.vertices[3 * t + 1],
                          m.vertices[3 * t + 2]);
  }
  return area;
}

Fab sphere_field(int n, double radius_cells) {
  Fab f(Box::domain({n, n, n}), 1);
  const double c = n / 2.0;
  for (BoxIterator it(f.box()); it.ok(); ++it) {
    const double dx = (*it)[0] + 0.5 - c;
    const double dy = (*it)[1] + 0.5 - c;
    const double dz = (*it)[2] + 0.5 - c;
    f(*it) = std::sqrt(dx * dx + dy * dy + dz * dz) - radius_cells;
  }
  return f;
}

TEST(McTables, StructuralInvariants) {
  // Config 0 and 255 produce nothing.
  EXPECT_EQ(kEdgeTable[0], 0);
  EXPECT_EQ(kEdgeTable[255], 0);
  EXPECT_EQ(kTriTable[0][0], -1);
  EXPECT_EQ(kTriTable[255][0], -1);
  for (int i = 0; i < 256; ++i) {
    // Complementary configurations cut the same edges.
    EXPECT_EQ(kEdgeTable[i], kEdgeTable[255 - i]) << "config " << i;
    // Triangle lists only reference edges flagged in the edge table, and are
    // multiples of 3 long.
    int count = 0;
    for (int t = 0; t < 16 && kTriTable[i][t] != -1; ++t, ++count) {
      const int e = kTriTable[i][t];
      ASSERT_GE(e, 0);
      ASSERT_LT(e, 12);
      EXPECT_TRUE(kEdgeTable[i] & (1u << e)) << "config " << i << " edge " << e;
    }
    EXPECT_EQ(count % 3, 0) << "config " << i;
  }
}

TEST(McTables, SingleCornerMakesOneTriangle) {
  // Exactly one corner below the isovalue -> a single corner-cutting triangle.
  for (int corner = 0; corner < 8; ++corner) {
    const int config = 1 << corner;
    int tris = 0;
    for (int t = 0; kTriTable[config][t] != -1; t += 3) ++tris;
    EXPECT_EQ(tris, 1) << "corner " << corner;
  }
}

TEST(MarchingCubes, SphereAreaMatchesAnalytic) {
  const int n = 32;
  const double r = 10.0;
  const Fab f = sphere_field(n, r);
  const Box cells(f.box().lo(), f.box().hi() - 1);  // corner stencil needs +1
  const TriangleMesh m = extract_isosurface(f, cells, 0.0);
  EXPECT_GT(m.triangle_count(), 500u);
  const double area = mesh_area(m);
  const double analytic = 4.0 * M_PI * r * r;
  EXPECT_NEAR(area, analytic, 0.05 * analytic);
}

TEST(MarchingCubes, NoSurfaceWhenAllInsideOrOutside) {
  Fab f(Box::domain({8, 8, 8}), 1, 5.0);
  const Box cells(f.box().lo(), f.box().hi() - 1);
  EXPECT_EQ(extract_isosurface(f, cells, 0.0).triangle_count(), 0u);
  EXPECT_EQ(extract_isosurface(f, cells, 10.0).triangle_count(), 0u);
  EXPECT_EQ(count_active_cells(f, cells, 0.0), 0u);
}

TEST(MarchingCubes, PlaneIsosurfaceAreaAndPosition) {
  // f = x - 4.25 in cell units: the isosurface is the plane x = 4.25.
  const int n = 8;
  Fab f(Box::domain({n, n, n}), 1);
  for (BoxIterator it(f.box()); it.ok(); ++it) f(*it) = (*it)[0] + 0.5 - 4.25;
  const Box cells(f.box().lo(), f.box().hi() - 1);
  const TriangleMesh m = extract_isosurface(f, cells, 0.0);
  ASSERT_GT(m.triangle_count(), 0u);
  for (const Vec3& v : m.vertices) EXPECT_NEAR(v.x, 4.25, 1e-9);
  // Plane spans the cell-center lattice (n-1)^2 in y/z.
  EXPECT_NEAR(mesh_area(m), (n - 1.0) * (n - 1.0), 1e-6);
}

TEST(MarchingCubes, DxAndOriginScaleVertices) {
  Fab f(Box::domain({4, 4, 4}), 1);
  for (BoxIterator it(f.box()); it.ok(); ++it) f(*it) = (*it)[0] - 1.0;
  const Box cells(f.box().lo(), f.box().hi() - 1);
  const TriangleMesh unit = extract_isosurface(f, cells, 0.0, 0, 1.0, {});
  const TriangleMesh scaled = extract_isosurface(f, cells, 0.0, 0, 0.5, {10, 0, 0});
  ASSERT_EQ(unit.triangle_count(), scaled.triangle_count());
  for (std::size_t i = 0; i < unit.vertices.size(); ++i) {
    EXPECT_NEAR(scaled.vertices[i].x, 10.0 + 0.5 * unit.vertices[i].x, 1e-12);
    EXPECT_NEAR(scaled.vertices[i].y, 0.5 * unit.vertices[i].y, 1e-12);
  }
}

TEST(MarchingCubes, ActiveCellCountMatchesShell) {
  const Fab f = sphere_field(16, 5.0);
  const Box cells(f.box().lo(), f.box().hi() - 1);
  const std::size_t active = count_active_cells(f, cells, 0.0);
  EXPECT_GT(active, 0u);
  EXPECT_LT(active, static_cast<std::size_t>(cells.num_cells()) / 4);
}

TEST(MeshIo, ObjRoundTripStructure) {
  TriangleMesh m;
  m.vertices = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 0, 1}, {0, 1, 1}};
  std::ostringstream os;
  write_obj(os, m, "test");
  const std::string out = os.str();
  EXPECT_NE(out.find("o test"), std::string::npos);
  EXPECT_NE(out.find("v 0 0 0"), std::string::npos);
  EXPECT_NE(out.find("f 1 2 3"), std::string::npos);
  EXPECT_NE(out.find("f 4 5 6"), std::string::npos);
  EXPECT_EQ(m.bytes(), 6 * sizeof(Vec3));
}

TEST(AmrIsosurface, MaskedExtractionAvoidsDoubleSurfaces) {
  // Hierarchy: 16^3 base, middle refined to 2x. The field is a sphere; the
  // masked AMR extraction must produce roughly the sphere area once, not
  // twice.
  amr::AmrConfig cfg;
  cfg.base_domain = Box::domain({16, 16, 16});
  cfg.max_levels = 2;
  cfg.max_box_size = 16;
  cfg.nghost = 1;
  cfg.nranks = 1;
  amr::AmrHierarchy h(cfg, 1);
  std::vector<Box> fine_boxes{Box({8, 8, 8}, {23, 23, 23})};
  h.regrid({mesh::BoxLayout(fine_boxes, {0}, 1)});

  const double r = 0.3;  // physical units, dx0 = 1/16
  auto fill = [&](amr::AmrLevel& level, double dx) {
    for (std::size_t i = 0; i < level.layout.num_boxes(); ++i) {
      Fab& fab = level.data[i];
      for (BoxIterator it(fab.box()); it.ok(); ++it) {
        const double x = ((*it)[0] + 0.5) * dx - 0.5;
        const double y = ((*it)[1] + 0.5) * dx - 0.5;
        const double z = ((*it)[2] + 0.5) * dx - 0.5;
        fab(*it) = std::sqrt(x * x + y * y + z * z) - r;
      }
    }
  };
  fill(h.level(0), 1.0 / 16.0);
  fill(h.level(1), 1.0 / 32.0);

  IsosurfaceStats stats;
  const TriangleMesh m = extract_amr_isosurface(h, 0.0, 0, 1.0 / 16.0, &stats);
  EXPECT_EQ(stats.triangles, m.triangle_count());
  EXPECT_GT(stats.triangles, 0u);
  const double analytic = 4.0 * M_PI * r * r;
  EXPECT_NEAR(mesh_area(m), analytic, 0.15 * analytic);
}

}  // namespace
}  // namespace xl::viz
