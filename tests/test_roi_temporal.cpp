// Tests for the remaining §2/§3 adaptation dimensions: region-of-interest
// analysis and temporal-resolution adaptation (analysis interval + skip
// under memory pressure).
#include <gtest/gtest.h>

#include "workflow/coupled_workflow.hpp"

namespace xl::workflow {
namespace {

WorkflowConfig base_config(Mode mode) {
  WorkflowConfig c;
  c.machine = cluster::titan();
  c.sim_cores = 128;
  c.staging_cores = 8;
  c.steps = 12;
  c.mode = mode;
  c.geometry.base_domain = mesh::Box::domain({128, 64, 64});
  c.geometry.nranks = 128;
  c.geometry.tile_size = 8;
  c.memory_model.ncomp = 1;
  return c;
}

TEST(RegionOfInterest, RestrictsAnalyzedCells) {
  WorkflowConfig full = base_config(Mode::StaticInTransit);
  WorkflowConfig roi = base_config(Mode::StaticInTransit);
  // Half the domain: the front is centered, so a half-box ROI cuts the
  // analyzed cells roughly in half.
  roi.regions_of_interest = {mesh::Box({0, 0, 0}, {63, 63, 63})};
  const WorkflowResult r_full = CoupledWorkflow(full).run();
  const WorkflowResult r_roi = CoupledWorkflow(roi).run();
  for (std::size_t i = 0; i < r_full.steps.size(); ++i) {
    EXPECT_LT(r_roi.steps[i].analyzed_cells, r_full.steps[i].analyzed_cells);
    EXPECT_GT(r_roi.steps[i].analyzed_cells, 0u);
    // Same simulation either way.
    EXPECT_EQ(r_roi.steps[i].total_cells, r_full.steps[i].total_cells);
  }
  EXPECT_LT(r_roi.bytes_moved, r_full.bytes_moved);
}

TEST(RegionOfInterest, FullDomainRoiMatchesNoRoi) {
  WorkflowConfig none = base_config(Mode::StaticInTransit);
  WorkflowConfig whole = base_config(Mode::StaticInTransit);
  whole.regions_of_interest = {whole.geometry.base_domain};
  const WorkflowResult a = CoupledWorkflow(none).run();
  const WorkflowResult b = CoupledWorkflow(whole).run();
  EXPECT_EQ(a.bytes_moved, b.bytes_moved);
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].analyzed_cells, b.steps[i].analyzed_cells);
  }
}

TEST(RegionOfInterest, DisjointRoiAnalyzesNothing) {
  WorkflowConfig c = base_config(Mode::StaticInSitu);
  // Corner far from the centered front and the (seeded) blobs at early steps.
  c.steps = 3;
  c.regions_of_interest = {mesh::Box({0, 0, 0}, {7, 7, 7})};
  const WorkflowResult r = CoupledWorkflow(c).run();
  for (const StepRecord& s : r.steps) {
    // Either the ROI genuinely catches nothing (analysis skipped), or a
    // coarse Berger-Rigoutsos box grazes the corner: a tiny sliver at most.
    if (!s.analysis_skipped) {
      EXPECT_LT(s.analyzed_cells, s.total_cells / 100);
    }
  }
  EXPECT_EQ(r.insitu_count + r.intransit_count + r.skipped_count,
            static_cast<int>(r.steps.size()));
}

TEST(TemporalResolution, IntervalSkipsOffScheduleSteps) {
  WorkflowConfig c = base_config(Mode::StaticInTransit);
  c.analysis_interval = 3;
  const WorkflowResult r = CoupledWorkflow(c).run();
  EXPECT_EQ(r.skipped_count, 8);  // 12 steps, analyzed at 0,3,6,9
  EXPECT_EQ(r.insitu_count + r.intransit_count, 4);
  for (const StepRecord& s : r.steps) {
    if (s.step % 3 == 0) {
      EXPECT_FALSE(s.analysis_skipped);
      EXPECT_GT(s.moved_bytes, 0u);
    } else {
      EXPECT_TRUE(s.analysis_skipped);
      EXPECT_EQ(s.moved_bytes, 0u);
      EXPECT_EQ(s.reduce_seconds, 0.0);
    }
  }
}

TEST(TemporalResolution, SkippingReducesOverheadAndMovement) {
  WorkflowConfig every = base_config(Mode::StaticInTransit);
  WorkflowConfig sparse = base_config(Mode::StaticInTransit);
  sparse.analysis_interval = 4;
  const WorkflowResult r_every = CoupledWorkflow(every).run();
  const WorkflowResult r_sparse = CoupledWorkflow(sparse).run();
  EXPECT_LT(r_sparse.bytes_moved, r_every.bytes_moved);
  EXPECT_LE(r_sparse.overhead_seconds, r_every.overhead_seconds + 1e-12);
  EXPECT_NEAR(r_sparse.pure_sim_seconds, r_every.pure_sim_seconds, 1e-9);
}

TEST(TemporalResolution, ConstrainedSkipRequiresGlobalModeAndFlag) {
  // With the flag off, a memory-constrained application decision still
  // analyzes (at the largest factor); with it on, the step is skipped.
  WorkflowConfig c = base_config(Mode::Global);
  c.hints.factor_phases = {{0, {2}}};  // single factor: easily constrained
  // Make in-situ memory hopeless so the decision is always constrained.
  c.memory_model.base_runtime_bytes = c.machine.mem_per_core_bytes();
  c.skip_analysis_when_constrained = false;
  const WorkflowResult analyzed = CoupledWorkflow(c).run();
  EXPECT_EQ(analyzed.skipped_count, 0);

  c.skip_analysis_when_constrained = true;
  const WorkflowResult skipped = CoupledWorkflow(c).run();
  EXPECT_EQ(skipped.skipped_count, c.steps);
  EXPECT_EQ(skipped.bytes_moved, 0u);
}

}  // namespace
}  // namespace xl::workflow
