// Tests for the fixed-rate lossy compressor (the application layer's second
// reduction operator): round-trip bounds, rate model exactness, degenerate
// inputs, and the bit-width/quality trade-off.
#include <algorithm>
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/compress.hpp"
#include "analysis/statistics.hpp"
#include "common/rng.hpp"

namespace xl::analysis {
namespace {

using mesh::Box;
using mesh::BoxIterator;
using mesh::Fab;

Fab smooth_field(int n) {
  Fab f(Box::domain({n, n, n}), 1);
  for (BoxIterator it(f.box()); it.ok(); ++it) {
    f(*it) = std::sin(0.3 * (*it)[0]) + 0.5 * std::cos(0.2 * (*it)[1]) +
             0.1 * (*it)[2];
  }
  return f;
}

TEST(Compress, RoundTripPreservesBoxAndComponents) {
  Fab f(Box::cube({2, 3, 4}, 8), 3, 1.5);
  const CompressedField c = compress(f);
  const Fab out = decompress(c);
  EXPECT_EQ(out.box(), f.box());
  EXPECT_EQ(out.ncomp(), 3);
}

TEST(Compress, ConstantFieldIsExact) {
  Fab f(Box::domain({8, 8, 8}), 2, 42.5);
  const Fab out = decompress(compress(f));
  for (BoxIterator it(f.box()); it.ok(); ++it) {
    EXPECT_DOUBLE_EQ(out(*it, 0), 42.5);
    EXPECT_DOUBLE_EQ(out(*it, 1), 42.5);
  }
}

TEST(Compress, LinearStreamIsExact) {
  // A field linear in the flattened (Fortran-order) stream has zero residual
  // under the per-block linear predictor: reconstruction is exact.
  Fab f(Box::domain({16, 4, 4}), 1);
  auto flat = f.flat();
  for (std::size_t i = 0; i < flat.size(); ++i) {
    flat[i] = 3.0 * static_cast<double>(i) + 1.0;
  }
  const Fab out = decompress(compress(f));
  auto out_flat = out.flat();
  for (std::size_t i = 0; i < out_flat.size(); ++i) {
    EXPECT_NEAR(out_flat[i], flat[i], 1e-9);
  }
}

class CompressBitsTest : public ::testing::TestWithParam<int> {};

TEST_P(CompressBitsTest, ErrorBoundedByQuantizationStep) {
  CompressConfig cfg;
  cfg.residual_bits = GetParam();
  const Fab f = smooth_field(16);
  const Fab out = decompress(compress(f, cfg));
  // Residual range per block is bounded by the field's variation in a block.
  double worst = 0.0;
  for (BoxIterator it(f.box()); it.ok(); ++it) {
    worst = std::max(worst, std::fabs(out(*it) - f(*it)));
  }
  // Conservative bound: full value range / quantization levels.
  const RunningStats stats = descriptive_stats(f, f.box());
  const double bound =
      max_error_for_range(stats.max() - stats.min(), cfg) * 2.0 + 1e-12;
  EXPECT_LE(worst, bound);
}

TEST_P(CompressBitsTest, RateModelMatchesActualSize) {
  CompressConfig cfg;
  cfg.residual_bits = GetParam();
  const Fab f = smooth_field(12);  // 1728 cells: exercises a tail block
  const CompressedField c = compress(f, cfg);
  EXPECT_EQ(c.bytes(), compressed_bytes(static_cast<std::size_t>(f.cells()), 1, cfg));
}

INSTANTIATE_TEST_SUITE_P(Bits, CompressBitsTest, ::testing::Values(4, 8, 12, 16));

TEST(Compress, MoreBitsLessError) {
  const Fab f = smooth_field(16);
  double prev = 1e300;
  for (int bits : {2, 6, 10, 14}) {
    CompressConfig cfg;
    cfg.residual_bits = bits;
    const double err = rmse(f, decompress(compress(f, cfg)));
    EXPECT_LT(err, prev);
    prev = err;
  }
}

TEST(Compress, CompressionActuallyCompresses) {
  CompressConfig cfg;
  cfg.residual_bits = 8;
  const Fab f = smooth_field(16);
  const CompressedField c = compress(f, cfg);
  // 8 bits residual + headers vs 64-bit doubles: better than 4x.
  EXPECT_LT(c.bytes(), f.bytes() / 4);
}

TEST(Compress, RandomNoiseRoundTripsWithinBound) {
  Rng rng(11);
  Fab f(Box::domain({8, 8, 8}), 1);
  for (BoxIterator it(f.box()); it.ok(); ++it) f(*it) = rng.uniform(-5.0, 5.0);
  CompressConfig cfg;
  cfg.residual_bits = 10;
  const Fab out = decompress(compress(f, cfg));
  for (BoxIterator it(f.box()); it.ok(); ++it) {
    EXPECT_NEAR(out(*it), f(*it), max_error_for_range(10.0, cfg) * 2.0);
  }
}

TEST(Compress, ScratchExceedsOutput) {
  CompressConfig cfg;
  EXPECT_GT(compression_scratch_bytes(1 << 15, 5, cfg),
            compressed_bytes(1 << 15, 5, cfg));
}

TEST(Compress, ValidatesConfig) {
  Fab f(Box::cube({0, 0, 0}, 4), 1);
  CompressConfig bad;
  bad.residual_bits = 0;
  EXPECT_THROW(compress(f, bad), ContractError);
  bad.residual_bits = 17;
  EXPECT_THROW(compress(f, bad), ContractError);
  bad.residual_bits = 8;
  bad.block = 1;
  EXPECT_THROW(compress(f, bad), ContractError);
}

TEST(Compress, RejectsTruncatedStream) {
  const Fab f = smooth_field(8);
  CompressedField c = compress(f);
  c.payload.resize(c.payload.size() / 2);
  EXPECT_THROW(decompress(c), ContractError);
}

TEST(Compress, MultiComponentIndependence) {
  Fab f(Box::domain({8, 8, 8}), 2);
  for (BoxIterator it(f.box()); it.ok(); ++it) {
    f(*it, 0) = (*it)[0];
    f(*it, 1) = 100.0 - (*it)[1];
  }
  const Fab out = decompress(compress(f));
  EXPECT_NEAR(out(mesh::IntVect{3, 3, 3}, 0), 3.0, 0.05);
  EXPECT_NEAR(out(mesh::IntVect{3, 3, 3}, 1), 97.0, 0.5);
}

}  // namespace
}  // namespace xl::analysis
