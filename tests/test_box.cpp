// Box calculus tests: the algebra every other module builds on. Includes
// parameterized property sweeps over sizes and refinement ratios.
#include <cstdint>
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "mesh/box.hpp"

namespace xl::mesh {
namespace {

TEST(IntVect, ComponentwiseOps) {
  const IntVect a{1, 2, 3}, b{3, 2, 1};
  EXPECT_EQ(a + b, IntVect(4, 4, 4));
  EXPECT_EQ(a - b, IntVect(-2, 0, 2));
  EXPECT_EQ(a * 2, IntVect(2, 4, 6));
  EXPECT_EQ(a.min(b), IntVect(1, 2, 1));
  EXPECT_EQ(a.max(b), IntVect(3, 2, 3));
  EXPECT_TRUE(a.all_le(IntVect(1, 2, 3)));
  EXPECT_FALSE(a.all_lt(IntVect(2, 3, 3)));
  EXPECT_EQ(a.product(), 6);
}

TEST(IntVect, CoarsenRoundsTowardMinusInfinity) {
  EXPECT_EQ(IntVect(-1, -2, -4).coarsen(IntVect::uniform(2)), IntVect(-1, -1, -2));
  EXPECT_EQ(IntVect(3, 4, 5).coarsen(IntVect::uniform(2)), IntVect(1, 2, 2));
  EXPECT_EQ(IntVect(-5, 0, 7).coarsen(IntVect::uniform(4)), IntVect(-2, 0, 1));
}

TEST(IntVect, RefineInvertsCoarsenOnAlignedPoints) {
  const IntVect p{-8, 4, 12};
  EXPECT_EQ(p.coarsen(IntVect::uniform(4)).refine(IntVect::uniform(4)), p);
}

TEST(Box, EmptyBoxBehaviour) {
  const Box e;
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.num_cells(), 0);
  EXPECT_FALSE(e.contains(IntVect::zero()));
  EXPECT_TRUE((e & Box::cube({0, 0, 0}, 4)).empty());
  EXPECT_EQ(e.hull(Box::cube({1, 1, 1}, 2)), Box::cube({1, 1, 1}, 2));
  // Inverted construction canonicalizes to empty.
  EXPECT_TRUE(Box({5, 0, 0}, {2, 9, 9}).empty());
}

TEST(Box, SizeAndContains) {
  const Box b({1, 2, 3}, {4, 5, 6});
  EXPECT_EQ(b.size(), IntVect(4, 4, 4));
  EXPECT_EQ(b.num_cells(), 64);
  EXPECT_TRUE(b.contains(IntVect(1, 2, 3)));
  EXPECT_TRUE(b.contains(IntVect(4, 5, 6)));
  EXPECT_FALSE(b.contains(IntVect(0, 2, 3)));
  EXPECT_TRUE(b.contains(Box({2, 3, 4}, {3, 4, 5})));
  EXPECT_FALSE(b.contains(Box({2, 3, 4}, {9, 4, 5})));
}

TEST(Box, IntersectionCommutesAndClips) {
  const Box a({0, 0, 0}, {7, 7, 7});
  const Box b({4, -2, 5}, {12, 3, 20});
  EXPECT_EQ(a & b, b & a);
  EXPECT_EQ(a & b, Box({4, 0, 5}, {7, 3, 7}));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(Box({8, 0, 0}, {9, 7, 7})));
}

TEST(Box, GrowShrinkShift) {
  const Box b = Box::cube({0, 0, 0}, 4);
  EXPECT_EQ(b.grow(2), Box({-2, -2, -2}, {5, 5, 5}));
  EXPECT_EQ(b.grow(2).grow(-2), b);
  EXPECT_TRUE(b.grow(-2).empty());
  EXPECT_EQ(b.shift({1, 0, -1}), Box({1, 0, -1}, {4, 3, 2}));
}

TEST(Box, RefineCoarsenVolumeRelation) {
  const Box b({-2, 0, 1}, {3, 5, 4});
  const Box r = b.refine(2);
  EXPECT_EQ(r.num_cells(), b.num_cells() * 8);
  EXPECT_EQ(r.coarsen(2), b);
}

TEST(Box, CoarsenCoversAllFineCells) {
  const Box fine({-3, 1, 5}, {6, 9, 11});
  const Box coarse = fine.coarsen(4);
  for (BoxIterator it(fine); it.ok(); ++it) {
    EXPECT_TRUE(coarse.contains((*it).coarsen(IntVect::uniform(4))));
  }
}

TEST(Box, ChopSplitsExactly) {
  Box b({0, 0, 0}, {9, 9, 9});
  const Box lower = b.chop(0, 4);
  EXPECT_EQ(lower, Box({0, 0, 0}, {3, 9, 9}));
  EXPECT_EQ(b, Box({4, 0, 0}, {9, 9, 9}));
  EXPECT_EQ(lower.num_cells() + b.num_cells(), 1000);
  EXPECT_FALSE(lower.intersects(b));
}

TEST(Box, ChopRejectsBoundaryPlanes) {
  Box b({0, 0, 0}, {9, 9, 9});
  EXPECT_THROW(b.chop(0, 0), ContractError);
  EXPECT_THROW(b.chop(0, 11), ContractError);
  EXPECT_THROW(b.chop(3, 5), ContractError);
}

TEST(Box, SubtractProducesDisjointTiling) {
  const Box a({0, 0, 0}, {9, 9, 9});
  const Box cut({3, 3, 3}, {6, 6, 6});
  std::vector<Box> rest;
  a.subtract(cut, rest);
  std::int64_t cells = 0;
  for (const Box& r : rest) {
    cells += r.num_cells();
    EXPECT_FALSE(r.intersects(cut));
    EXPECT_TRUE(a.contains(r));
    for (const Box& other : rest) {
      if (&r != &other) {
        EXPECT_FALSE(r.intersects(other));
      }
    }
  }
  EXPECT_EQ(cells, a.num_cells() - cut.num_cells());
}

TEST(Box, SubtractDisjointReturnsSelf) {
  const Box a = Box::cube({0, 0, 0}, 4);
  std::vector<Box> rest;
  a.subtract(Box::cube({10, 10, 10}, 4), rest);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0], a);
}

TEST(Box, SubtractFullCoverReturnsNothing) {
  const Box a = Box::cube({1, 1, 1}, 3);
  std::vector<Box> rest;
  a.subtract(a.grow(1), rest);
  EXPECT_TRUE(rest.empty());
}

TEST(Box, IndexOfIsDenseFortranOrder) {
  const Box b({2, 3, 4}, {4, 5, 6});
  std::set<std::int64_t> seen;
  std::int64_t expected = 0;
  for (BoxIterator it(b); it.ok(); ++it) {
    EXPECT_EQ(b.index_of(*it), expected++);  // iterator is Fortran-ordered too
    seen.insert(b.index_of(*it));
  }
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), b.num_cells());
  EXPECT_THROW(b.index_of({0, 0, 0}), ContractError);
}

TEST(BoxIterator, CountsCellsAndHandlesEmpty) {
  int n = 0;
  for (BoxIterator it(Box::cube({-1, -1, -1}, 3)); it.ok(); ++it) ++n;
  EXPECT_EQ(n, 27);
  int m = 0;
  for (BoxIterator it{Box()}; it.ok(); ++it) ++m;
  EXPECT_EQ(m, 0);
}

TEST(Box, LongestDim) {
  EXPECT_EQ(Box({0, 0, 0}, {1, 5, 3}).longest_dim(), 1);
  EXPECT_EQ(Box({0, 0, 0}, {5, 5, 3}).longest_dim(), 0);  // tie -> lowest dim
}

// ---------------------------------------------------------------------------
// Property sweep: refine/coarsen/subtract invariants over random boxes.
class BoxPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BoxPropertyTest, RandomizedAlgebraInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 50; ++trial) {
    const IntVect lo{static_cast<int>(rng.uniform_int(-20, 20)),
                     static_cast<int>(rng.uniform_int(-20, 20)),
                     static_cast<int>(rng.uniform_int(-20, 20))};
    const IntVect sz{static_cast<int>(rng.uniform_int(1, 12)),
                     static_cast<int>(rng.uniform_int(1, 12)),
                     static_cast<int>(rng.uniform_int(1, 12))};
    const Box a(lo, lo + sz - 1);
    const int ratio = GetParam();

    // refine then coarsen is identity.
    EXPECT_EQ(a.refine(ratio).coarsen(ratio), a);
    // coarsen covers: a is contained in coarsen(a).refine.
    EXPECT_TRUE(a.coarsen(ratio).refine(ratio).contains(a));
    // hull contains both operands.
    const Box b = a.shift({static_cast<int>(rng.uniform_int(-6, 6)), 0, 1});
    EXPECT_TRUE(a.hull(b).contains(a));
    EXPECT_TRUE(a.hull(b).contains(b));
    // intersection is contained in both.
    const Box i = a & b;
    if (!i.empty()) {
      EXPECT_TRUE(a.contains(i));
      EXPECT_TRUE(b.contains(i));
    }
    // subtract then total cells balance.
    std::vector<Box> rest;
    a.subtract(b, rest);
    std::int64_t cells = 0;
    for (const Box& r : rest) cells += r.num_cells();
    EXPECT_EQ(cells, a.num_cells() - i.num_cells());
  }
}

INSTANTIATE_TEST_SUITE_P(Ratios, BoxPropertyTest, ::testing::Values(2, 3, 4));

}  // namespace
}  // namespace xl::mesh
