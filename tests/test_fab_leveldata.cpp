// Tests for Fab storage, pack/unpack wire format, and LevelData ghost
// exchange (including periodic wrapping) — the communication substrate of
// the AMR library.
#include <gtest/gtest.h>

#include <cstddef>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "mesh/level_data.hpp"

namespace xl::mesh {
namespace {

double cell_value(const IntVect& p, int c) {
  return 100.0 * c + p[0] + 10.0 * p[1] + 0.01 * p[2];
}

TEST(Fab, IndexingAndComponents) {
  Fab f(Box::cube({1, 1, 1}, 3), 2, -1.0);
  EXPECT_EQ(f.cells(), 27);
  EXPECT_EQ(f.size(), 54u);
  EXPECT_EQ(f.bytes(), 54 * sizeof(double));
  for (BoxIterator it(f.box()); it.ok(); ++it) {
    EXPECT_DOUBLE_EQ(f(*it, 0), -1.0);
    f(*it, 1) = cell_value(*it, 1);
  }
  EXPECT_DOUBLE_EQ(f(IntVect(2, 3, 1), 1), cell_value({2, 3, 1}, 1));
  EXPECT_EQ(f.comp(0).size(), 27u);
  EXPECT_THROW(f.comp(2), ContractError);
}

TEST(Fab, CopyFromRestrictsToOverlapAndRegion) {
  Fab src(Box::cube({0, 0, 0}, 4), 1);
  for (BoxIterator it(src.box()); it.ok(); ++it) src(*it) = cell_value(*it, 0);
  Fab dst(Box::cube({2, 2, 2}, 4), 1, 0.0);
  dst.copy_from(src, Box::cube({2, 2, 2}, 2));  // only a 2^3 corner
  int copied = 0;
  for (BoxIterator it(dst.box()); it.ok(); ++it) {
    if (Box::cube({2, 2, 2}, 2).contains(*it)) {
      EXPECT_DOUBLE_EQ(dst(*it), cell_value(*it, 0));
      ++copied;
    } else {
      EXPECT_DOUBLE_EQ(dst(*it), 0.0);
    }
  }
  EXPECT_EQ(copied, 8);
}

TEST(Fab, PackUnpackRoundTrip) {
  Fab src(Box::cube({0, 0, 0}, 4), 3);
  for (int c = 0; c < 3; ++c) {
    for (BoxIterator it(src.box()); it.ok(); ++it) src(*it, c) = cell_value(*it, c);
  }
  const Box region({1, 0, 2}, {3, 3, 3});
  const PoolVec<double> wire = src.pack(region);
  EXPECT_EQ(wire.size(),
            static_cast<std::size_t>((region & src.box()).num_cells()) * 3);

  Fab dst(src.box(), 3, 0.0);
  dst.unpack(region, wire);
  for (int c = 0; c < 3; ++c) {
    for (BoxIterator it(region & src.box()); it.ok(); ++it) {
      EXPECT_DOUBLE_EQ(dst(*it, c), src(*it, c));
    }
  }
}

TEST(Fab, UnpackRejectsWrongSize) {
  Fab f(Box::cube({0, 0, 0}, 2), 1);
  std::vector<double> tooShort(3, 0.0);
  EXPECT_THROW(f.unpack(f.box(), tooShort), ContractError);
}

TEST(Fab, ContractChecks) {
  EXPECT_THROW(Fab(Box(), 1), ContractError);
  EXPECT_THROW(Fab(Box::cube({0, 0, 0}, 2), 0), ContractError);
}

// Fab::row is the flat-traversal primitive of the kernel rewrites: one bounds
// check per row, then a raw pointer walk that must address exactly the cells
// operator() addresses — ghost rows and negative coordinates included.
TEST(Fab, RowMatchesPerCellAccessorIncludingGhosts) {
  // Ghosted box with a negative low corner, as AMR fabs have.
  const Box valid = Box::cube({0, 0, 0}, 4);
  Fab f(valid.grow(2), 2);
  for (BoxIterator it(f.box()); it.ok(); ++it) {
    for (int c = 0; c < f.ncomp(); ++c) f(*it, c) = cell_value(*it, c);
  }
  EXPECT_EQ(f.row_length(), 8u);  // rows span the ghosts: 4 + 2*2
  const int x0 = f.box().lo()[0];
  for (int c = 0; c < f.ncomp(); ++c) {
    for (int k = f.box().lo()[2]; k <= f.box().hi()[2]; ++k) {
      for (int j = f.box().lo()[1]; j <= f.box().hi()[1]; ++j) {
        const double* r = f.row(c, j, k);
        for (std::size_t i = 0; i < f.row_length(); ++i) {
          ASSERT_EQ(r[i], f(IntVect{x0 + static_cast<int>(i), j, k}, c))
              << "row mismatch at c=" << c << " j=" << j << " k=" << k
              << " i=" << i;
        }
      }
    }
  }
  // Writes through the row pointer land in the same cells.
  double* w = f.row(1, 0, 0);
  w[2] = 123.5;  // x = lo + 2 = 0
  EXPECT_EQ(f(IntVect{0, 0, 0}, 1), 123.5);
}

TEST(Fab, RowSubBoxOffsetAddressesTheSubRow) {
  const Box valid = Box::cube({0, 0, 0}, 6);
  Fab f(valid.grow(1), 1);
  for (BoxIterator it(f.box()); it.ok(); ++it) f(*it) = cell_value(*it, 0);
  // The documented sub-box idiom: row(...) + (sub.lo()[0] - box().lo()[0]).
  const Box sub({2, 1, 3}, {4, 4, 5});
  const int xoff = sub.lo()[0] - f.box().lo()[0];
  for_each_row(sub, [&](int j, int k) {
    const double* r = f.row(0, j, k) + xoff;
    for (int i = 0; i < sub.size()[0]; ++i) {
      ASSERT_EQ(r[i], f(IntVect{sub.lo()[0] + i, j, k}, 0));
    }
  });
}

TEST(Fab, RowOutsideBoxIsAContractViolation) {
  Fab f(Box::cube({0, 0, 0}, 4), 1);
  EXPECT_THROW(f.row(0, -1, 0), ContractError);  // j below the box
  EXPECT_THROW(f.row(0, 0, 4), ContractError);   // k past the box
  EXPECT_THROW(f.row(1, 0, 0), ContractError);   // component out of range
  EXPECT_NO_THROW(f.row(0, 3, 3));
}

TEST(Box, ForEachRowVisitsRowsInBoxIteratorOrder) {
  const Box b({-2, 1, 0}, {3, 4, 2});
  // The (j, k) sequence BoxIterator produces, one entry per x-row.
  std::vector<std::pair<int, int>> want;
  for (BoxIterator it(b); it.ok(); ++it) {
    if ((*it)[0] == b.lo()[0]) want.emplace_back((*it)[1], (*it)[2]);
  }
  std::vector<std::pair<int, int>> got;
  for_each_row(b, [&](int j, int k) { got.emplace_back(j, k); });
  EXPECT_EQ(got, want);
  EXPECT_EQ(got.size(), static_cast<std::size_t>(b.size()[1] * b.size()[2]));
}

class ExchangeTest : public ::testing::TestWithParam<int> {};

TEST_P(ExchangeTest, InteriorGhostsFilledFromNeighbours) {
  const int nghost = GetParam();
  const Box domain = Box::domain({8, 8, 8});
  const BoxLayout layout = balance(decompose(domain, 4), 2);
  LevelData data(layout, 1, nghost);
  // Valid cells get their analytic value; ghosts start poisoned.
  data.set_all(-999.0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (BoxIterator it(layout.box(i)); it.ok(); ++it) {
      data[i](*it) = cell_value(*it, 0);
    }
  }
  data.exchange(domain, /*periodic=*/false);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const Box ghosted = layout.box(i).grow(nghost);
    for (BoxIterator it(ghosted); it.ok(); ++it) {
      if (domain.contains(*it)) {
        EXPECT_DOUBLE_EQ(data[i](*it), cell_value(*it, 0))
            << "cell " << *it << " of box " << i;
      } else {
        EXPECT_DOUBLE_EQ(data[i](*it), -999.0);  // outside domain: untouched
      }
    }
  }
}

TEST_P(ExchangeTest, PeriodicGhostsWrapAround) {
  const int nghost = GetParam();
  const Box domain = Box::domain({8, 8, 8});
  const BoxLayout layout = balance(decompose(domain, 4), 2);
  LevelData data(layout, 1, nghost);
  data.set_all(-999.0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (BoxIterator it(layout.box(i)); it.ok(); ++it) {
      data[i](*it) = cell_value(*it, 0);
    }
  }
  data.exchange(domain, /*periodic=*/true);
  const IntVect dsize = domain.size();
  for (std::size_t i = 0; i < data.size(); ++i) {
    const Box ghosted = layout.box(i).grow(nghost);
    for (BoxIterator it(ghosted); it.ok(); ++it) {
      IntVect wrapped = *it;
      for (int d = 0; d < kDim; ++d) {
        wrapped[d] = ((wrapped[d] % dsize[d]) + dsize[d]) % dsize[d];
      }
      EXPECT_DOUBLE_EQ(data[i](*it), cell_value(wrapped, 0))
          << "ghost " << *it << " should wrap to " << wrapped;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(GhostWidths, ExchangeTest, ::testing::Values(1, 2));

TEST(Copier, OffRankBytesCountsOnlyCrossRankOps) {
  const Box domain = Box::domain({8, 4, 4});
  // Two boxes, forced onto different ranks.
  std::vector<Box> boxes{Box({0, 0, 0}, {3, 3, 3}), Box({4, 0, 0}, {7, 3, 3})};
  const BoxLayout split(boxes, {0, 1}, 2);
  const BoxLayout together(boxes, {0, 0}, 2);
  Copier copier(split, 1, domain, false);
  EXPECT_GT(copier.off_rank_bytes(split, 1), 0u);
  EXPECT_EQ(copier.off_rank_bytes(together, 1), 0u);
  // One face of 4x4 cells each direction.
  EXPECT_EQ(copier.off_rank_bytes(split, 1), 2 * 16 * sizeof(double));
}

TEST(Copier, ZeroGhostMeansNoOps) {
  const BoxLayout layout = balance(decompose(Box::domain({8, 8, 8}), 4), 2);
  Copier copier(layout, 0, Box::domain({8, 8, 8}), true);
  EXPECT_TRUE(copier.ops().empty());
}

TEST(LevelData, SumAndMinMaxOverValidOnly) {
  const Box domain = Box::domain({4, 4, 4});
  const BoxLayout layout = balance(decompose(domain, 2), 1);
  LevelData data(layout, 1, 1);
  data.set_all(5.0);  // ghosts too
  EXPECT_DOUBLE_EQ(data.sum(0), 5.0 * 64);
  const auto [lo, hi] = data.min_max(0);
  EXPECT_DOUBLE_EQ(lo, 5.0);
  EXPECT_DOUBLE_EQ(hi, 5.0);
}

TEST(LevelData, BytesIncludeGhosts) {
  const BoxLayout layout = balance(decompose(Box::domain({4, 4, 4}), 4), 1);
  LevelData data(layout, 2, 1);
  // Each 4^3 box ghosted to 6^3, 2 comps.
  EXPECT_EQ(data.bytes(), 216u * 2u * sizeof(double));
}

}  // namespace
}  // namespace xl::mesh
