// The contracts layer: XL_ASSERT/XL_ENSURE mechanics (message + value
// capture, abort vs throw), the guarded numeric conversions, and the checked
// container accessors. The macro tests branch on xl::contracts_abort() so the
// same suite is valid in the default (throwing) build and the Debug/sanitizer
// XLAYER_CONTRACTS_ABORT build, where a violation must die, not unwind.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/contract.hpp"
#include "common/lookup.hpp"

namespace xl {
namespace {

// --- XL_ASSERT / XL_ENSURE ---------------------------------------------------

TEST(Contract, PassingChecksAreSilent) {
  XL_ASSERT(1 + 1 == 2, "arithmetic");
  XL_ENSURE(true, "trivial");
  XL_ASSERT_DBG(true, "debug-only");
}

TEST(Contract, AssertCapturesMessageAndValues) {
  if (contracts_abort()) {
    EXPECT_DEATH(XL_ASSERT(false, "x=" << 42), "x=42");
    return;
  }
  try {
    const int x = 42;
    XL_ASSERT(x < 0, "x=" << x << " must be negative");
    FAIL() << "XL_ASSERT did not fire";
  } catch (const InternalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("x=42 must be negative"), std::string::npos) << what;
    EXPECT_NE(what.find("x < 0"), std::string::npos) << what;  // the expression
  }
}

TEST(Contract, EnsureReportsAsPostcondition) {
  if (contracts_abort()) {
    EXPECT_DEATH(XL_ENSURE(false, "broken"), "postcondition");
    return;
  }
  try {
    XL_ENSURE(false, "broken");
    FAIL() << "XL_ENSURE did not fire";
  } catch (const InternalError& e) {
    EXPECT_NE(std::string(e.what()).find("postcondition"), std::string::npos);
  }
}

TEST(Contract, AssertDbgMatchesBuildMode) {
#if !defined(NDEBUG) || defined(XLAYER_CONTRACTS_FULL)
  if (contracts_abort()) {
    EXPECT_DEATH(XL_ASSERT_DBG(false, "active"), "active");
  } else {
    EXPECT_THROW(XL_ASSERT_DBG(false, "active"), InternalError);
  }
#else
  XL_ASSERT_DBG(false, "compiled out in Release");  // must not fire
#endif
}

// --- f2i / f2s ---------------------------------------------------------------

TEST(GuardedConversions, F2iMatchesStaticCastInRange) {
  // The whole point: in-range conversions are bit-identical to static_cast,
  // so the tree-wide rewrite cannot move a golden timeline.
  EXPECT_EQ(f2i<int>(3.9), 3);
  EXPECT_EQ(f2i<int>(-3.9), -3);  // C++ truncation toward zero
  EXPECT_EQ(f2i<int>(0.0), 0);
  // xl-lint: allow(float-cast): the raw cast IS the reference being tested
  EXPECT_EQ(f2s(12345.678), static_cast<std::size_t>(12345.678));
}

TEST(GuardedConversions, F2iClampsOutOfRange) {
  EXPECT_EQ(f2i<int>(1e30), std::numeric_limits<int>::max());
  EXPECT_EQ(f2i<int>(-1e30), std::numeric_limits<int>::min());
  EXPECT_EQ(f2i<std::int8_t>(1000.0), std::int8_t{127});
  EXPECT_EQ(f2s(-0.5), std::size_t{0});
  EXPECT_EQ(f2i<int>(std::numeric_limits<double>::infinity()),
            std::numeric_limits<int>::max());
}

TEST(GuardedConversions, F2iRejectsNaN) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  if (contracts_abort()) {
    EXPECT_DEATH(f2i<int>(nan), "NaN");
  } else {
    EXPECT_THROW(f2i<int>(nan), InternalError);
    EXPECT_THROW(f2s(nan), InternalError);
  }
}

// --- narrow ------------------------------------------------------------------

TEST(GuardedConversions, NarrowPreservesFittingValues) {
  EXPECT_EQ(narrow<std::int8_t>(127), std::int8_t{127});
  EXPECT_EQ(narrow<std::uint16_t>(std::size_t{65535}), std::uint16_t{65535});
  EXPECT_EQ(narrow<int>(std::int64_t{-5}), -5);
}

TEST(GuardedConversions, NarrowRejectsLossAndSignFlips) {
  if (contracts_abort()) {
    EXPECT_DEATH(narrow<std::int8_t>(128), "does not fit");
    return;
  }
  EXPECT_THROW(narrow<std::int8_t>(128), InternalError);
  EXPECT_THROW(narrow<std::uint32_t>(-1), InternalError);
  EXPECT_THROW(narrow<int>(std::size_t{1} << 40), InternalError);
}

// --- to_double ---------------------------------------------------------------

TEST(GuardedConversions, ToDoubleExactBelow2To53) {
  EXPECT_EQ(to_double(0), 0.0);
  EXPECT_EQ(to_double(std::size_t{1} << 52), std::ldexp(1.0, 52));
  EXPECT_EQ(to_double(-123456789), -123456789.0);
}

TEST(GuardedConversions, ToDoubleRejectsPrecisionLoss) {
  const std::uint64_t too_big = (std::uint64_t{1} << 53) + 1;
  if (contracts_abort()) {
    EXPECT_DEATH(to_double(too_big), "2\\^53");
  } else {
    EXPECT_THROW(to_double(too_big), InternalError);
  }
}

// --- checked accessors -------------------------------------------------------

TEST(Lookup, MapAtReturnsMappedValue) {
  std::map<std::string, int> m{{"alpha", 1}, {"beta", 2}};
  EXPECT_EQ(map_at(m, std::string("beta"), "test map"), 2);
  map_at(m, std::string("alpha"), "test map") = 7;  // mutable overload
  EXPECT_EQ(m["alpha"], 7);
}

TEST(Lookup, MapAtNamesTheMissingKey) {
  const std::map<std::string, int> m{{"alpha", 1}};
  try {
    map_at(m, std::string("gamma"), "test map");
    FAIL() << "map_at did not throw";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test map"), std::string::npos) << what;
    EXPECT_NE(what.find("gamma"), std::string::npos) << what;
  }
}

TEST(Lookup, AtIndexBoundsChecks) {
  std::vector<int> v{10, 20, 30};
  EXPECT_EQ(at_index(v, 2, "test vec"), 30);
  at_index(v, 0, "test vec") = 11;
  EXPECT_EQ(v[0], 11);
  try {
    at_index(v, 3, "test vec");
    FAIL() << "at_index did not throw";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("index 3"), std::string::npos) << what;
    EXPECT_NE(what.find("size 3"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace xl
