// Tests for the finite-volume solvers and the AMR time-stepping driver:
// conservation, positivity, transport direction, CFL stability, and the
// full adaptive loop (init -> advance -> regrid).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "amr/advection_diffusion.hpp"
#include "amr/amr_simulation.hpp"
#include "amr/polytropic_gas.hpp"

namespace xl::amr {
namespace {

AmrConfig single_level_config(int n) {
  AmrConfig cfg;
  cfg.base_domain = Box::domain({n, n, n});
  cfg.max_levels = 1;
  cfg.max_box_size = n;
  cfg.nghost = 2;
  cfg.nranks = 1;
  cfg.periodic = true;
  return cfg;
}

TEST(AdvectionDiffusion, InitialConditionPeaksAtCenter) {
  AdvectionDiffusionConfig pc;
  pc.center[0] = pc.center[1] = pc.center[2] = 0.5;
  AdvectionDiffusion phys(pc);
  double at_center = 0.0, at_corner = 0.0;
  const double dx = 1.0 / 16.0;
  phys.initial_value({8, 8, 8}, dx, &at_center);
  phys.initial_value({0, 0, 0}, dx, &at_corner);
  EXPECT_GT(at_center, at_corner);
  EXPECT_NEAR(at_corner, pc.background, 0.05);
}

TEST(AdvectionDiffusion, SingleLevelConservesMassExactly) {
  auto phys = std::make_shared<AdvectionDiffusion>();
  AmrSimulation sim(single_level_config(16), phys, {}, 0.4);
  sim.initialize();
  const double mass0 = sim.hierarchy().level(0).data.sum(0);
  for (int i = 0; i < 5; ++i) sim.advance();
  const double mass1 = sim.hierarchy().level(0).data.sum(0);
  // Periodic domain + conservative fluxes: mass preserved to roundoff.
  EXPECT_NEAR(mass1, mass0, 1e-9 * std::fabs(mass0));
}

TEST(AdvectionDiffusion, BlobMovesDownwind) {
  AdvectionDiffusionConfig pc;
  pc.velocity[0] = 1.0;
  pc.velocity[1] = 0.0;
  pc.velocity[2] = 0.0;
  pc.diffusivity = 0.0;
  pc.center[0] = 0.25;
  auto phys = std::make_shared<AdvectionDiffusion>(pc);
  AmrSimulation sim(single_level_config(16), phys, {}, 0.4);
  sim.initialize();

  auto centroid_x = [&] {
    double num = 0.0, den = 0.0;
    const auto& level = sim.hierarchy().level(0);
    for (std::size_t i = 0; i < level.layout.num_boxes(); ++i) {
      for (mesh::BoxIterator it(level.layout.box(i)); it.ok(); ++it) {
        const double u = level.data[i](*it);
        num += u * ((*it)[0] + 0.5);
        den += u;
      }
    }
    return num / den;
  };
  const double x0 = centroid_x();
  for (int i = 0; i < 8; ++i) sim.advance();
  EXPECT_GT(centroid_x(), x0 + 0.1);  // moved in +x
}

TEST(AdvectionDiffusion, DiffusionReducesPeak) {
  AdvectionDiffusionConfig pc;
  pc.velocity[0] = pc.velocity[1] = pc.velocity[2] = 0.0;
  pc.diffusivity = 0.005;
  auto phys = std::make_shared<AdvectionDiffusion>(pc);
  AmrSimulation sim(single_level_config(16), phys, {}, 0.4);
  sim.initialize();
  const auto [lo0, hi0] = sim.hierarchy().level(0).data.min_max(0);
  for (int i = 0; i < 10; ++i) sim.advance();
  const auto [lo1, hi1] = sim.hierarchy().level(0).data.min_max(0);
  EXPECT_LT(hi1, hi0);
  EXPECT_GE(lo1, 0.0);
}

TEST(PolytropicGas, InitialConditionHasPressureJump) {
  PolytropicGas phys;
  double inside[5], outside[5];
  const double dx = 1.0 / 32.0;
  phys.initial_value({16, 16, 16}, dx, inside);
  phys.initial_value({0, 0, 0}, dx, outside);
  EXPECT_GT(phys.pressure(inside), phys.pressure(outside));
  EXPECT_GT(inside[PolytropicGas::kEnergy], outside[PolytropicGas::kEnergy]);
  EXPECT_DOUBLE_EQ(inside[PolytropicGas::kMomX], 0.0);
}

TEST(PolytropicGas, ConservesMassMomentumEnergySingleLevel) {
  auto phys = std::make_shared<PolytropicGas>();
  AmrSimulation sim(single_level_config(16), phys, {}, 0.3);
  sim.initialize();
  const auto& data0 = sim.hierarchy().level(0).data;
  const double mass0 = data0.sum(PolytropicGas::kRho);
  const double momx0 = data0.sum(PolytropicGas::kMomX);
  const double energy0 = data0.sum(PolytropicGas::kEnergy);
  for (int i = 0; i < 5; ++i) sim.advance();
  const auto& data1 = sim.hierarchy().level(0).data;
  EXPECT_NEAR(data1.sum(PolytropicGas::kRho), mass0, 1e-9 * mass0);
  EXPECT_NEAR(data1.sum(PolytropicGas::kMomX), momx0, 1e-9 * mass0);
  EXPECT_NEAR(data1.sum(PolytropicGas::kEnergy), energy0, 1e-9 * energy0);
}

TEST(PolytropicGas, ShockExpandsOutward) {
  auto phys = std::make_shared<PolytropicGas>();
  AmrSimulation sim(single_level_config(16), phys, {}, 0.3);
  sim.initialize();
  // Density at a point outside the initial sphere rises as the blast arrives.
  const IntVect probe{13, 8, 8};
  const double rho0 = sim.hierarchy().level(0).data[0](probe, PolytropicGas::kRho);
  for (int i = 0; i < 12; ++i) sim.advance();
  const double rho1 = sim.hierarchy().level(0).data[0](probe, PolytropicGas::kRho);
  EXPECT_GT(rho1, rho0 * 1.01);
}

TEST(PolytropicGas, DensityStaysPositive) {
  auto phys = std::make_shared<PolytropicGas>();
  AmrSimulation sim(single_level_config(16), phys, {}, 0.3);
  sim.initialize();
  for (int i = 0; i < 10; ++i) sim.advance();
  const auto [lo, hi] = sim.hierarchy().level(0).data.min_max(PolytropicGas::kRho);
  EXPECT_GT(lo, 0.0);
  EXPECT_LT(hi, 100.0);  // and no blowup
}

TEST(AmrSimulation, DtPositiveAndBounded) {
  auto phys = std::make_shared<PolytropicGas>();
  AmrSimulation sim(single_level_config(8), phys, {}, 0.3);
  sim.initialize();
  const StepStats s = sim.advance();
  EXPECT_GT(s.dt, 0.0);
  EXPECT_LT(s.dt, 1.0);
  EXPECT_EQ(s.step, 1);
  EXPECT_GT(s.total_cells, 0);
  EXPECT_GT(s.bytes, 0u);
}

AmrConfig adaptive_config() {
  AmrConfig cfg;
  cfg.base_domain = Box::domain({16, 16, 16});
  cfg.max_levels = 2;
  cfg.ref_ratio = 2;
  cfg.max_box_size = 8;
  cfg.blocking_factor = 4;
  cfg.nghost = 2;
  cfg.nranks = 2;
  cfg.fill_ratio = 0.7;
  return cfg;
}

TEST(AmrSimulation, InitializeRefinesAroundShock) {
  auto phys = std::make_shared<PolytropicGas>();
  TagCriterion crit;
  crit.comp = PolytropicGas::kRho;
  crit.rel_threshold = 0.05;
  AmrSimulation sim(adaptive_config(), phys, crit, 0.3);
  sim.initialize();
  ASSERT_EQ(sim.hierarchy().num_levels(), 2u);
  EXPECT_GT(sim.hierarchy().level(1).layout.total_cells(), 0);
  // Fine cells hug the interface: far corners are not refined.
  for (const Box& b : sim.hierarchy().level(1).layout.boxes()) {
    EXPECT_TRUE(sim.hierarchy().domain_of(1).contains(b));
  }
  EXPECT_LT(sim.hierarchy().level(1).layout.total_cells(),
            sim.hierarchy().domain_of(1).num_cells());
}

TEST(AmrSimulation, AdaptiveRunRegridsAndTracksShock) {
  auto phys = std::make_shared<PolytropicGas>();
  TagCriterion crit;
  crit.comp = PolytropicGas::kRho;
  crit.rel_threshold = 0.05;
  AmrSimulation sim(adaptive_config(), phys, crit, 0.3, /*regrid_interval=*/2);
  sim.initialize();
  const double mass0 = sim.hierarchy().level(0).data.sum(PolytropicGas::kRho);
  bool saw_regrid = false;
  for (int i = 0; i < 6; ++i) {
    const StepStats s = sim.advance();
    saw_regrid = saw_regrid || s.regridded;
    EXPECT_EQ(s.cells_per_level.size(), sim.hierarchy().num_levels());
  }
  EXPECT_TRUE(saw_regrid);
  // Multi-level mass conservation is approximate (no refluxing): within 5%.
  // (The paper's data-management behaviour does not depend on refluxing.)
  const double mass = sim.hierarchy().level(0).data.sum(PolytropicGas::kRho);
  EXPECT_NEAR(mass, mass0, 0.05 * mass0);
}

TEST(AmrSimulation, ConfigValidation) {
  auto phys = std::make_shared<PolytropicGas>();
  AmrConfig cfg = single_level_config(8);
  cfg.nghost = 1;  // below the physics stencil
  EXPECT_THROW(AmrSimulation(cfg, phys, {}, 0.3), ContractError);
  EXPECT_THROW(AmrSimulation(single_level_config(8), nullptr, {}, 0.3), ContractError);
  EXPECT_THROW(AmrSimulation(single_level_config(8), phys, {}, 1.5), ContractError);
}

TEST(AmrSimulation, DxHalvesPerLevel) {
  auto phys = std::make_shared<PolytropicGas>();
  AmrSimulation sim(adaptive_config(), phys, {}, 0.3);
  EXPECT_DOUBLE_EQ(sim.dx(0), 1.0 / 16.0);
  EXPECT_DOUBLE_EQ(sim.dx(1), 1.0 / 32.0);
}

}  // namespace
}  // namespace xl::amr
