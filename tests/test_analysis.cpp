// Tests for the analysis kernels: downsampling, entropy (paper eq. 11),
// descriptive statistics, subsetting and reconstruction-quality metrics.
#include <cstdint>
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/downsample.hpp"
#include "analysis/entropy.hpp"
#include "analysis/statistics.hpp"
#include "common/rng.hpp"

namespace xl::analysis {
namespace {

using mesh::Box;
using mesh::BoxIterator;
using mesh::Fab;
using mesh::IntVect;

Fab ramp_field(int n) {
  Fab f(Box::domain({n, n, n}), 1);
  for (BoxIterator it(f.box()); it.ok(); ++it) {
    f(*it) = (*it)[0] + 100.0 * (*it)[1] + 10000.0 * (*it)[2];
  }
  return f;
}

class DownsampleFactorTest : public ::testing::TestWithParam<int> {};

TEST_P(DownsampleFactorTest, OutputCoversCoarsenedBox) {
  const int X = GetParam();
  const Fab src = ramp_field(16);
  for (auto method : {DownsampleMethod::Stride, DownsampleMethod::Average}) {
    const Fab out = downsample(src, X, method);
    EXPECT_EQ(out.box(), src.box().coarsen(X));
    EXPECT_EQ(out.ncomp(), 1);
  }
}

TEST_P(DownsampleFactorTest, ConstantFieldIsExact) {
  const int X = GetParam();
  Fab src(Box::domain({16, 16, 16}), 2, 3.5);
  for (auto method : {DownsampleMethod::Stride, DownsampleMethod::Average}) {
    const Fab out = downsample(src, X, method);
    for (BoxIterator it(out.box()); it.ok(); ++it) {
      EXPECT_DOUBLE_EQ(out(*it, 0), 3.5);
      EXPECT_DOUBLE_EQ(out(*it, 1), 3.5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Factors, DownsampleFactorTest, ::testing::Values(2, 4, 8));

TEST(Downsample, FactorOneIsCopy) {
  const Fab src = ramp_field(8);
  const Fab out = downsample(src, 1);
  for (BoxIterator it(src.box()); it.ok(); ++it) {
    EXPECT_DOUBLE_EQ(out(*it), src(*it));
  }
}

TEST(Downsample, StrideSamplesFirstChild) {
  const Fab src = ramp_field(8);
  const Fab out = downsample(src, 2, DownsampleMethod::Stride);
  for (BoxIterator it(out.box()); it.ok(); ++it) {
    EXPECT_DOUBLE_EQ(out(*it), src((*it).refine(IntVect::uniform(2))));
  }
}

TEST(Downsample, AverageIsMeanOfChildren) {
  const Fab src = ramp_field(8);
  const Fab out = downsample(src, 2, DownsampleMethod::Average);
  const IntVect p{1, 1, 1};
  double sum = 0.0;
  for (BoxIterator it(Box(p.refine(IntVect::uniform(2)),
                          p.refine(IntVect::uniform(2)) + 1));
       it.ok(); ++it) {
    sum += src(*it);
  }
  EXPECT_NEAR(out(p), sum / 8.0, 1e-12);
}

TEST(Downsample, UpsampleRoundTripPreservesCoarseValues) {
  const Fab src = ramp_field(8);
  const Fab down = downsample(src, 2, DownsampleMethod::Stride);
  const Fab up = upsample_constant(down, src.box(), 2);
  for (BoxIterator it(down.box()); it.ok(); ++it) {
    EXPECT_DOUBLE_EQ(up((*it).refine(IntVect::uniform(2))), down(*it));
  }
}

TEST(Downsample, ReducedBytesModel) {
  EXPECT_EQ(reduced_bytes(4096, 1, 1), 4096 * sizeof(double));
  EXPECT_EQ(reduced_bytes(4096, 1, 2), 512 * sizeof(double));
  EXPECT_EQ(reduced_bytes(4096, 5, 4), 64 * 5 * sizeof(double));
  // Rounds up for non-multiples.
  EXPECT_EQ(reduced_bytes(9, 1, 2), 2 * sizeof(double));
  EXPECT_THROW(reduced_bytes(8, 1, 0), ContractError);
}

TEST(Downsample, ScratchDecreasesWithFactor) {
  const std::size_t s2 = reduction_scratch_bytes(1 << 18, 5, 2);
  const std::size_t s8 = reduction_scratch_bytes(1 << 18, 5, 8);
  EXPECT_GT(s2, s8);
}

// --- Entropy ----------------------------------------------------------------

TEST(Entropy, ConstantBlockIsZero) {
  Fab f(Box::domain({8, 8, 8}), 1, 2.5);
  EXPECT_DOUBLE_EQ(block_entropy(f, f.box()), 0.0);
}

TEST(Entropy, TwoEqualValuesGiveOneBit) {
  Fab f(Box::domain({8, 8, 8}), 1);
  for (BoxIterator it(f.box()); it.ok(); ++it) f(*it) = (*it)[0] % 2 ? 1.0 : 0.0;
  EXPECT_NEAR(block_entropy(f, f.box()), 1.0, 1e-9);
}

TEST(Entropy, UniformNoiseApproachesLogBins) {
  Fab f(Box::domain({16, 16, 16}), 1);
  Rng rng(3);
  for (BoxIterator it(f.box()); it.ok(); ++it) f(*it) = rng.next_double();
  EntropyConfig cfg;
  cfg.bins = 64;
  const double h = block_entropy(f, f.box(), cfg);
  EXPECT_GT(h, 5.5);
  EXPECT_LE(h, 6.0 + 1e-9);  // log2(64) = 6
}

TEST(Entropy, StructuredBlockBeatsSmoothBlock) {
  // The paper's premise: high-entropy (structured) regions keep resolution.
  Fab structured(Box::domain({8, 8, 8}), 1);
  Fab smooth(Box::domain({8, 8, 8}), 1);
  Rng rng(9);
  for (BoxIterator it(structured.box()); it.ok(); ++it) {
    structured(*it) = rng.next_double();
    smooth(*it) = 1.0 + 1e-3 * (*it)[0];
  }
  EntropyConfig cfg;
  cfg.range_lo = 0.0;
  cfg.range_hi = 2.0;  // shared range, like comparing blocks of one dataset
  EXPECT_GT(block_entropy(structured, structured.box(), cfg),
            block_entropy(smooth, smooth.box(), cfg) + 1.0);
}

TEST(Entropy, FactorForEntropyLadder) {
  const std::vector<double> thresholds{3.0, 6.0};
  const std::vector<int> factors{1, 2, 4};  // >=6 bits -> 1, >=3 -> 2, else 4
  EXPECT_EQ(factor_for_entropy(7.0, thresholds, factors), 1);
  EXPECT_EQ(factor_for_entropy(6.0, thresholds, factors), 1);
  EXPECT_EQ(factor_for_entropy(4.5, thresholds, factors), 2);
  EXPECT_EQ(factor_for_entropy(1.0, thresholds, factors), 4);
  EXPECT_THROW(factor_for_entropy(1.0, thresholds, {1, 2}), ContractError);
}

TEST(Entropy, PlanCoversFabAndAssignsFactors) {
  Fab f(Box::domain({16, 16, 16}), 1);
  Rng rng(4);
  // Noisy half, constant half.
  for (BoxIterator it(f.box()); it.ok(); ++it) {
    f(*it) = (*it)[0] < 8 ? rng.next_double() : 0.5;
  }
  EntropyConfig cfg;
  cfg.range_lo = 0.0;
  cfg.range_hi = 1.0;
  const auto plan = entropy_downsample_plan(f, 8, {2.0}, {1, 4}, cfg);
  ASSERT_EQ(plan.size(), 8u);  // 2x2x2 blocks of 8^3
  std::int64_t covered = 0;
  for (const auto& d : plan) {
    covered += d.block.num_cells();
    const bool noisy = d.block.lo()[0] < 8;
    EXPECT_EQ(d.factor, noisy ? 1 : 4) << "block " << d.block;
  }
  EXPECT_EQ(covered, f.box().num_cells());
}

// --- Statistics / quality ----------------------------------------------------

TEST(Statistics, DescriptiveStatsOverRegion) {
  const Fab f = ramp_field(4);
  const RunningStats s = descriptive_stats(f, Box({0, 0, 0}, {3, 0, 0}));
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 1.5);
}

TEST(Statistics, SubsetExtractsExactRegion) {
  const Fab f = ramp_field(8);
  const Box region({2, 3, 4}, {5, 6, 7});
  const Fab sub = subset(f, region);
  EXPECT_EQ(sub.box(), region);
  for (BoxIterator it(region); it.ok(); ++it) {
    EXPECT_DOUBLE_EQ(sub(*it), f(*it));
  }
  EXPECT_THROW(subset(f, Box::cube({100, 100, 100}, 2)), ContractError);
}

TEST(Statistics, RmseAndPsnr) {
  Fab a(Box::domain({4, 4, 4}), 1, 1.0);
  Fab b(Box::domain({4, 4, 4}), 1, 1.0);
  EXPECT_DOUBLE_EQ(rmse(a, b), 0.0);
  EXPECT_TRUE(std::isinf(psnr(a, b)));
  for (BoxIterator it(b.box()); it.ok(); ++it) b(*it) = 1.5;
  EXPECT_DOUBLE_EQ(rmse(a, b), 0.5);
}

TEST(Statistics, DownsamplingLosesMoreAtHigherFactors) {
  // Reconstruction error grows monotonically with the factor on a smooth
  // but non-constant field — the trade-off eq. 1 navigates.
  Fab f(Box::domain({16, 16, 16}), 1);
  for (BoxIterator it(f.box()); it.ok(); ++it) {
    f(*it) = std::sin(0.4 * (*it)[0]) * std::cos(0.3 * (*it)[1]) + 0.1 * (*it)[2];
  }
  double prev = 0.0;
  for (int X : {2, 4, 8}) {
    const Fab rec = upsample_constant(downsample(f, X), f.box(), X);
    const double err = rmse(f, rec);
    EXPECT_GT(err, prev);
    prev = err;
  }
}

}  // namespace
}  // namespace xl::analysis
