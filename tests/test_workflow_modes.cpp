// Parameterized invariants over every workflow mode: accounting identities,
// trace consistency, and cross-mode dominance relations that must hold for
// any strategy (e.g. no strategy beats the no-analysis lower bound).
#include <gtest/gtest.h>

#include "workflow/coupled_workflow.hpp"
#include "workflow/energy.hpp"

namespace xl::workflow {
namespace {

WorkflowConfig mode_config(Mode mode) {
  WorkflowConfig c;
  c.machine = cluster::titan();
  c.sim_cores = 128;
  c.staging_cores = 8;
  c.steps = 15;
  c.mode = mode;
  c.geometry.base_domain = mesh::Box::domain({128, 64, 64});
  c.geometry.nranks = 128;
  c.geometry.tile_size = 8;
  c.geometry.front_speed = 0.01;
  c.memory_model.ncomp = 1;
  c.hints.factor_phases = {{0, {2, 4}}};
  return c;
}

class ModeInvariants : public ::testing::TestWithParam<Mode> {};

TEST_P(ModeInvariants, AccountingHoldsForEveryMode) {
  const WorkflowResult r = CoupledWorkflow(mode_config(GetParam())).run();
  ASSERT_EQ(r.steps.size(), 15u);
  EXPECT_EQ(r.insitu_count + r.intransit_count, 15);
  EXPECT_GE(r.end_to_end_seconds, r.pure_sim_seconds);
  EXPECT_GE(r.overhead_seconds, 0.0);

  double windows = 0.0;
  std::size_t moved = 0;
  for (const StepRecord& s : r.steps) {
    EXPECT_GE(s.window_seconds, s.sim_seconds - 1e-12);
    EXPECT_GE(s.intransit_cores, 0);
    EXPECT_GE(s.factor, 1);
    EXPECT_GE(s.backlog_seconds, 0.0);
    windows += s.window_seconds;
    moved += s.moved_bytes;
  }
  EXPECT_EQ(moved, r.bytes_moved);
  // Step windows tile the full end-to-end timeline.
  EXPECT_NEAR(windows, r.end_to_end_seconds, 1e-9);
}

TEST_P(ModeInvariants, PlacementMatchesByteFlow) {
  const WorkflowResult r = CoupledWorkflow(mode_config(GetParam())).run();
  for (const StepRecord& s : r.steps) {
    if (s.placement == runtime::Placement::InSitu) {
      EXPECT_EQ(s.moved_bytes, 0u);
      EXPECT_EQ(s.intransit_analysis_seconds, 0.0);
    } else {
      EXPECT_GT(s.moved_bytes, 0u);
      EXPECT_EQ(s.insitu_analysis_seconds, 0.0);
      // Reduced data never exceeds the raw output.
      EXPECT_LE(s.moved_bytes, s.raw_bytes);
    }
  }
}

TEST_P(ModeInvariants, UtilizationWithinBounds) {
  const WorkflowResult r = CoupledWorkflow(mode_config(GetParam())).run();
  EXPECT_GE(r.utilization_efficiency, 0.0);
  EXPECT_LE(r.utilization_efficiency, 1.0 + 1e-9);
}

TEST_P(ModeInvariants, EnergyReportConsistent) {
  const WorkflowConfig cfg = mode_config(GetParam());
  const WorkflowResult r = CoupledWorkflow(cfg).run();
  const EnergyReport e = estimate_energy(r, cfg.sim_cores);
  EXPECT_GT(e.total_joules(), 0.0);
  if (r.bytes_moved == 0) {
    EXPECT_DOUBLE_EQ(e.network_joules, 0.0);
  }
  if (r.bytes_moved > 0) {
    EXPECT_GT(e.network_joules, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, ModeInvariants,
                         ::testing::Values(Mode::StaticInSitu, Mode::StaticInTransit,
                                           Mode::AdaptiveMiddleware,
                                           Mode::AdaptiveResource, Mode::Global),
                         [](const ::testing::TestParamInfo<Mode>& info) {
                           std::string name = mode_name(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(ModeRelations, HybridSplitsAcrossBothPartitions) {
  // §3: "Placements can be in-situ, in-transit or hybrid". The hybrid run
  // must (a) move some but not all of the data, and (b) charge analysis time
  // on both partitions overall.
  const WorkflowResult hybrid = CoupledWorkflow(mode_config(Mode::StaticHybrid)).run();
  const WorkflowResult fixed =
      CoupledWorkflow(mode_config(Mode::StaticInTransit)).run();
  EXPECT_GT(hybrid.bytes_moved, 0u);
  EXPECT_LE(hybrid.bytes_moved, fixed.bytes_moved);
  double insitu_s = 0.0, intransit_s = 0.0;
  for (const StepRecord& s : hybrid.steps) {
    insitu_s += s.insitu_analysis_seconds;
    intransit_s += s.intransit_analysis_seconds;
  }
  EXPECT_GT(intransit_s, 0.0);
  // Hybrid in-situ remainder only exists when staging alone cannot hide the
  // work; with the in-transit share capped at the step duration, the hidden
  // part never exceeds the full in-transit time.
  EXPECT_GE(insitu_s, 0.0);
  EXPECT_EQ(hybrid.insitu_count + hybrid.intransit_count,
            static_cast<int>(hybrid.steps.size()));
}

TEST(ModeRelations, GlobalEmploysAllThreeLayers) {
  // The paper's §5.2.4 observation: in the global run every layer's
  // mechanism executes; the local run uses only the middleware layer.
  WorkflowConfig global = mode_config(Mode::Global);
  const WorkflowResult g = CoupledWorkflow(global).run();
  EXPECT_GT(g.application_adaptations, 0);
  EXPECT_GT(g.resource_adaptations, 0);
  EXPECT_GT(g.middleware_adaptations, 0);

  const WorkflowResult local =
      CoupledWorkflow(mode_config(Mode::AdaptiveMiddleware)).run();
  EXPECT_EQ(local.application_adaptations, 0);
  EXPECT_EQ(local.resource_adaptations, 0);
  EXPECT_GT(local.middleware_adaptations, 0);

  const WorkflowResult fixed = CoupledWorkflow(mode_config(Mode::StaticInSitu)).run();
  EXPECT_EQ(fixed.application_adaptations + fixed.resource_adaptations +
                fixed.middleware_adaptations,
            0);
}

TEST(ModeRelations, PureSimIsTheLowerBound) {
  // Every strategy's end-to-end time is bounded below by the pure simulation
  // time, and they all simulate the identical workload.
  double sim_ref = -1.0;
  for (Mode mode : {Mode::StaticInSitu, Mode::StaticInTransit,
                    Mode::AdaptiveMiddleware, Mode::Global}) {
    const WorkflowResult r = CoupledWorkflow(mode_config(mode)).run();
    if (sim_ref < 0.0) sim_ref = r.pure_sim_seconds;
    EXPECT_NEAR(r.pure_sim_seconds, sim_ref, 1e-9);
    EXPECT_GE(r.end_to_end_seconds, sim_ref);
  }
}

TEST(ModeRelations, GlobalNeverMovesMoreRawBytesThanStaticInTransit) {
  const WorkflowResult fixed =
      CoupledWorkflow(mode_config(Mode::StaticInTransit)).run();
  const WorkflowResult global = CoupledWorkflow(mode_config(Mode::Global)).run();
  EXPECT_LE(global.bytes_moved, fixed.bytes_moved);
}

}  // namespace
}  // namespace xl::workflow
