// Tests for the staging durability layer: k-way replica placement across
// failure domains, per-replica ledger accounting, LossPolicy semantics,
// quorum reads with read-repair, budgeted anti-entropy, and the threaded
// service surviving k-1 concurrent server failures under client load (the
// TSan chaos target).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "staging/service.hpp"
#include "staging/space.hpp"

namespace xl::staging {
namespace {

using mesh::Box;
using mesh::Fab;

Box box_at(int i) { return Box::cube({(i % 8) * 32, ((i / 8) % 8) * 32, 0}, 16); }

void fill(StagingSpace& space, int objects, std::size_t bytes = 4096) {
  for (int i = 0; i < objects; ++i) space.put(i % 4, box_at(i), 1, bytes);
}

// --- replica placement -------------------------------------------------------

TEST(ReplicaPlacement, TargetsAreDistinctAliveServers) {
  StagingSpace space(8, std::size_t{1} << 20, /*replication=*/3);
  for (int i = 0; i < 16; ++i) {
    const std::vector<int> targets = space.replica_targets(box_at(i), 4096);
    ASSERT_EQ(targets.size(), 3u) << "object " << i;
    EXPECT_EQ(targets.front(), space.target_server(box_at(i)));
    const std::set<int> unique(targets.begin(), targets.end());
    EXPECT_EQ(unique.size(), targets.size()) << "duplicate server, object " << i;
  }
}

TEST(ReplicaPlacement, PrefersDistinctFailureDomains) {
  // 8 servers in 4 domains of 2: with k = 3 and everything alive, the three
  // replicas must land in three different domains.
  StagingSpace space(8, std::size_t{1} << 20, /*replication=*/3, /*servers_per_domain=*/2);
  for (int i = 0; i < 16; ++i) {
    const std::vector<int> targets = space.replica_targets(box_at(i), 4096);
    ASSERT_EQ(targets.size(), 3u);
    std::set<int> domains;
    for (int s : targets) domains.insert(space.domain_of(s));
    EXPECT_EQ(domains.size(), 3u) << "object " << i;
  }
}

TEST(ReplicaPlacement, DegradedGroupYieldsFewerReplicas) {
  StagingSpace space(4, std::size_t{1} << 20, /*replication=*/3);
  space.fail_server(1, LossPolicy::Drop);
  space.fail_server(2, LossPolicy::Drop);
  const Box box = box_at(0);
  const std::vector<int> targets = space.replica_targets(box, 4096);
  EXPECT_EQ(targets.size(), 2u);  // only 2 alive servers remain
  const auto id = space.put(0, box, 1, 4096);
  EXPECT_EQ(space.object_replicas(id), 2u);
}

TEST(ReplicaPlacement, QuorumIsMajority) {
  EXPECT_EQ(StagingSpace(4, 1 << 20, 1).quorum(), 1);
  EXPECT_EQ(StagingSpace(4, 1 << 20, 2).quorum(), 2);
  EXPECT_EQ(StagingSpace(4, 1 << 20, 3).quorum(), 2);
  EXPECT_EQ(StagingSpace(8, 1 << 20, 5).quorum(), 3);
}

// --- target_server probing edges ---------------------------------------------

TEST(TargetServer, AllDeadReturnsMinusOne) {
  StagingSpace space(3, 1 << 20);
  for (int s = 0; s < 3; ++s) space.fail_server(s, LossPolicy::Drop);
  EXPECT_EQ(space.alive_servers(), 0);
  EXPECT_EQ(space.target_server(box_at(0)), -1);
  EXPECT_TRUE(space.replica_targets(box_at(0), 64).empty());
}

TEST(TargetServer, SingleSurvivorMapsEverything) {
  StagingSpace space(4, 1 << 20);
  for (int s : {0, 1, 3}) space.fail_server(s, LossPolicy::Drop);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(space.target_server(box_at(i)), 2);
}

TEST(TargetServer, RecoveryRestoresHashTargets) {
  StagingSpace space(4, 1 << 20);
  std::vector<int> before;
  for (int i = 0; i < 32; ++i) before.push_back(space.target_server(box_at(i)));
  for (int s = 0; s < 4; ++s) {
    space.fail_server(s, LossPolicy::Drop);
    space.recover_server(s);
  }
  for (int i = 0; i < 32; ++i) EXPECT_EQ(space.target_server(box_at(i)), before[i]);
}

// --- ledger accounting under replication -------------------------------------

TEST(ReplicaLedger, EveryReplicaIsCharged) {
  StagingSpace space(8, std::size_t{1} << 20, /*replication=*/3);
  fill(space, 16, 4096);
  // Physical footprint = k x payload; per-server ledgers sum to used_bytes().
  EXPECT_EQ(space.used_bytes(), 16u * 4096u * 3u);
  EXPECT_EQ(space.replica_count(), 48u);
  std::size_t per_server = 0;
  for (int s = 0; s < 8; ++s) per_server += space.server_used_bytes(s);
  EXPECT_EQ(per_server, space.used_bytes());
  EXPECT_EQ(space.free_bytes(), space.capacity_bytes() - space.used_bytes());
}

TEST(ReplicaLedger, BalancesThroughFailRepairRecoverCycles) {
  StagingSpace space(8, std::size_t{1} << 20, /*replication=*/3, /*servers_per_domain=*/2);
  fill(space, 24, 4096);
  const std::size_t logical = 24u * 4096u;
  for (int cycle = 0; cycle < 3; ++cycle) {
    const int victim = (2 * cycle) % 8;
    space.fail_server(victim, LossPolicy::Repair);
    EXPECT_EQ(space.server_used_bytes(victim), 0u) << "cycle " << cycle;
    const RepairReport pass = space.anti_entropy_repair();
    EXPECT_EQ(pass.remaining_deficit, 0u) << "cycle " << cycle;
    space.recover_server(victim);
    // Full replication restored: ledgers sum to exactly k x logical again.
    EXPECT_EQ(space.used_bytes(), logical * 3u) << "cycle " << cycle;
    EXPECT_EQ(space.replica_deficit(), 0u) << "cycle " << cycle;
    std::size_t per_server = 0;
    for (int s = 0; s < 8; ++s) per_server += space.server_used_bytes(s);
    EXPECT_EQ(per_server, space.used_bytes()) << "cycle " << cycle;
  }
  EXPECT_EQ(space.object_count(), 24u);
}

TEST(ReplicaLedger, EraseFreesEveryReplica) {
  StagingSpace space(8, std::size_t{1} << 20, /*replication=*/2);
  const auto id = space.put(0, box_at(0), 1, 4096);
  EXPECT_EQ(space.used_bytes(), 8192u);
  space.erase(id);
  EXPECT_EQ(space.used_bytes(), 0u);
  for (int s = 0; s < 8; ++s) EXPECT_EQ(space.server_used_bytes(s), 0u);
}

// --- LossPolicy semantics ----------------------------------------------------

TEST(LossPolicy, RelocateRebuildsReplicasImmediately) {
  StagingSpace space(8, std::size_t{1} << 20, /*replication=*/2);
  fill(space, 16, 4096);
  const ServerLossReport report = space.fail_server(3, LossPolicy::Relocate);
  EXPECT_EQ(report.dropped_objects, 0u);
  EXPECT_EQ(report.degraded_objects, 0u);
  // Whatever server 3 held came back as fresh replicas elsewhere.
  EXPECT_EQ(report.repaired_bytes, report.repaired_objects * 4096u);
  EXPECT_EQ(space.replica_deficit(), 0u);
  EXPECT_EQ(space.object_count(), 16u);
}

TEST(LossPolicy, RepairLeavesSurvivorsDegraded) {
  StagingSpace space(8, std::size_t{1} << 20, /*replication=*/2);
  fill(space, 16, 4096);
  const ServerLossReport report = space.fail_server(3, LossPolicy::Repair);
  EXPECT_EQ(report.dropped_objects, 0u);
  EXPECT_EQ(report.repaired_objects, 0u);
  EXPECT_EQ(space.replica_deficit(), report.degraded_objects);
  const RepairReport pass = space.anti_entropy_repair();
  EXPECT_EQ(pass.repaired_replicas, report.degraded_objects);
  EXPECT_EQ(space.replica_deficit(), 0u);
}

TEST(LossPolicy, DropAbandonsLastCopies) {
  StagingSpace space(2, std::size_t{1} << 20, /*replication=*/1);
  fill(space, 16, 4096);
  const std::size_t on0 = space.server_used_bytes(0) / 4096;
  const ServerLossReport report = space.fail_server(0, LossPolicy::Drop);
  EXPECT_EQ(report.dropped_objects, on0);
  EXPECT_EQ(report.dropped_bytes, on0 * 4096u);
  EXPECT_EQ(space.object_count(), 16u - on0);
}

// --- anti-entropy budget and read-repair -------------------------------------

TEST(AntiEntropy, ByteBudgetBoundsOnePass) {
  StagingSpace space(8, std::size_t{1} << 20, /*replication=*/2);
  fill(space, 16, 4096);
  space.fail_server(2, LossPolicy::Repair);
  const std::size_t deficit = space.replica_deficit();
  ASSERT_GT(deficit, 1u);  // the schedule must actually degrade something
  const RepairReport partial = space.anti_entropy_repair(/*max_bytes=*/4096);
  EXPECT_EQ(partial.repaired_replicas, 1u);  // one 4096-byte copy fits
  EXPECT_EQ(partial.remaining_deficit, deficit - 1);
  const RepairReport rest = space.anti_entropy_repair();
  EXPECT_EQ(rest.remaining_deficit, 0u);
  EXPECT_EQ(partial.repaired_replicas + rest.repaired_replicas, deficit);
}

TEST(ReadRepair, RestoresQuorumForTheReadObjects) {
  StagingSpace space(8, std::size_t{1} << 20, /*replication=*/3);
  fill(space, 16, 4096);
  space.fail_server(1, LossPolicy::Repair);
  space.fail_server(4, LossPolicy::Repair);
  ASSERT_GT(space.replica_deficit(), 0u);
  const Box everything = Box::domain({256, 256, 256});
  const ReadReport read = space.read_repair(0, everything);  // version 0 only
  EXPECT_EQ(read.objects, 4u);
  EXPECT_GT(read.repaired_replicas, 0u);
  // Every object the read touched is back at full strength for this group.
  for (const StagedObject* obj : space.query(0, everything)) {
    EXPECT_GE(obj->replicas.size(), static_cast<std::size_t>(space.quorum()));
  }
  // Objects of other versions were NOT repaired by this read.
  EXPECT_GT(space.replica_deficit(), 0u);
}

// --- service-level chaos (the TSan target) -----------------------------------

// f = k-1 concurrent server failures under concurrent client load: no staged
// object may be lost, and every future must complete. Run under TSan with
// XL_THREADS=4 in CI; the assertions hold regardless of thread interleaving
// because loss takes k overlapping failures.
TEST(ServiceChaos, SurvivesConcurrentFailuresBelowReplication) {
  constexpr int kReplication = 3;
  constexpr int kPuts = 48;
  ServiceConfig cfg;
  cfg.num_servers = 8;
  cfg.memory_per_server = std::size_t{8} << 20;
  cfg.replication = kReplication;
  cfg.servers_per_domain = 2;
  cfg.loss_policy = LossPolicy::Repair;
  StagingService service(cfg);

  std::atomic<int> accepted{0};
  std::thread writer([&] {
    for (int i = 0; i < kPuts; ++i) {
      const Box box = box_at(i);
      if (service.put_async(0, box, Fab(box, 1, double(i))).get().accepted) {
        accepted.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::thread chaos([&] {
    // k-1 = 2 concurrent failures in distinct domains, twice, with repair
    // and recovery between rounds — failures land mid-put-stream.
    for (int round = 0; round < 2; ++round) {
      const int a = round * 4, b = round * 4 + 2;
      (void)service.fail_server(a);
      (void)service.fail_server(b);
      (void)service.repair_async().get();
      service.recover_server(a);
      service.recover_server(b);
    }
  });
  writer.join();
  chaos.join();
  service.drain();
  (void)service.repair_async().get();

  // Zero loss: every accepted put is still readable.
  const auto fabs = service.get_async(0, Box::domain({256, 256, 256})).get();
  EXPECT_EQ(static_cast<int>(fabs.size()), accepted.load());
  EXPECT_EQ(accepted.load(), kPuts);  // memory was ample; nothing was refused
  EXPECT_EQ(service.replica_deficit(), 0u);
  EXPECT_EQ(service.replica_count(), static_cast<std::size_t>(kPuts) * kReplication);
}

TEST(ServiceChaos, ObserverSeesDurabilityEvents) {
  ServiceEventLog log;
  ServiceConfig cfg;
  cfg.num_servers = 4;
  cfg.memory_per_server = std::size_t{4} << 20;
  cfg.replication = 2;
  cfg.loss_policy = LossPolicy::Repair;
  cfg.observer = log.observer();
  StagingService service(cfg);
  const Box box = Box::domain({8, 8, 8});
  ASSERT_TRUE(service.put_async(0, box, Fab(box, 1, 1.0)).get().accepted);
  (void)service.fail_server(staging::server_for_box(box, 4));  // the primary
  (void)service.get_async(0, box).get();  // quorum read repairs on the way
  service.drain();

  EXPECT_GE(log.count(ServiceEvent::Kind::Put), 1u);
  EXPECT_GE(log.count(ServiceEvent::Kind::ServerLost), 1u);
  EXPECT_GE(log.count(ServiceEvent::Kind::Get), 1u);
}

}  // namespace
}  // namespace xl::staging
