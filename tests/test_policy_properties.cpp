// Property-based tests over the adaptation policies: randomized inputs with
// invariants that must hold for EVERY input, not just the worked examples of
// test_runtime_policies.cpp.
#include <cstdint>
#include <gtest/gtest.h>
#include <limits>

#include <algorithm>

#include "common/contract.hpp"
#include "common/rng.hpp"
#include "runtime/app_policy.hpp"
#include "runtime/middleware_policy.hpp"
#include "runtime/resource_policy.hpp"

namespace xl::runtime {
namespace {

constexpr std::size_t MB = std::size_t{1} << 20;

// --- Application-layer policy -------------------------------------------------

class AppPolicyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AppPolicyProperty, FactorMonotoneInMemoryPressure) {
  // Less memory can never select a smaller (higher-resolution) factor.
  Rng rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<int> ladder;
    int f = 1 << rng.uniform_int(0, 2);
    for (int k = 0; k < 4; ++k) {
      ladder.push_back(f);
      f *= 2;
    }
    const auto cells = static_cast<std::size_t>(rng.uniform_int(1 << 10, 1 << 24));
    const int ncomp = static_cast<int>(rng.uniform_int(1, 6));
    int prev_factor = 0;
    // Sweep memory from generous to none; factor must be non-decreasing.
    for (double mem_mb = 4096.0; mem_mb >= 0.25; mem_mb /= 4.0) {
      const AppDecision d = select_downsample_factor(
          ladder, cells, ncomp, static_cast<std::size_t>(mem_mb * MB));
      EXPECT_GE(d.factor, prev_factor);
      prev_factor = d.factor;
      // The decision is always a member of the ladder.
      EXPECT_NE(std::find(ladder.begin(), ladder.end(), d.factor), ladder.end());
      // When not constrained, the scratch fits the headroom budget.
      if (!d.memory_constrained) {
        EXPECT_LE(d.scratch_bytes, xl::f2s(0.9 * mem_mb * MB) + 1);
      }
    }
  }
}

TEST_P(AppPolicyProperty, ReducedBytesShrinkWithFactor) {
  Rng rng(GetParam() ^ 0xABCD);
  for (int trial = 0; trial < 50; ++trial) {
    const auto cells = static_cast<std::size_t>(rng.uniform_int(1, 1 << 22));
    const int ncomp = static_cast<int>(rng.uniform_int(1, 8));
    std::size_t prev = std::numeric_limits<std::size_t>::max();
    for (int factor : {1, 2, 4, 8, 16}) {
      const std::size_t bytes = analysis::reduced_bytes(cells, ncomp, factor);
      EXPECT_LE(bytes, prev);
      EXPECT_GT(bytes, 0u);
      prev = bytes;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AppPolicyProperty, ::testing::Values(1, 2, 3));

// --- Middleware policy ----------------------------------------------------------

class MiddlewareProperty : public ::testing::TestWithParam<std::uint64_t> {};

PlacementInputs random_inputs(Rng& rng) {
  PlacementInputs in;
  in.data_bytes = static_cast<std::size_t>(rng.uniform_int(1, 1000)) * MB;
  in.insitu_mem_needed = static_cast<std::size_t>(rng.uniform_int(0, 500)) * MB;
  in.insitu_mem_available = static_cast<std::size_t>(rng.uniform_int(0, 1000)) * MB;
  in.intransit_mem_free = static_cast<std::size_t>(rng.uniform_int(0, 2000)) * MB;
  in.intransit_backlog_seconds = rng.uniform(0.0, 10.0);
  in.est_insitu_seconds = rng.uniform(0.01, 5.0);
  in.est_intransit_seconds = rng.uniform(0.01, 5.0);
  return in;
}

TEST_P(MiddlewareProperty, DecisionsAreTotalAndConsistent) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 500; ++trial) {
    const PlacementInputs in = random_inputs(rng);
    const MiddlewareDecision d = decide_placement(in);
    // The decision never places in-transit when staging cannot cache the data.
    if (in.data_bytes > in.intransit_mem_free) {
      EXPECT_EQ(d.placement, Placement::InSitu);
    }
    // A feasible=false flag appears exactly when neither side has memory.
    const bool insitu_ok = in.insitu_mem_needed <= in.insitu_mem_available;
    const bool intransit_ok = in.data_bytes <= in.intransit_mem_free;
    EXPECT_EQ(d.feasible, insitu_ok || intransit_ok);
    // Determinism.
    const MiddlewareDecision d2 = decide_placement(in);
    EXPECT_EQ(d.placement, d2.placement);
    EXPECT_EQ(d.reason, d2.reason);
  }
}

TEST_P(MiddlewareProperty, MoreBacklogNeverFlipsTowardInTransit) {
  // With everything else fixed and both sides feasible, increasing the
  // backlog can only move the decision from in-transit to in-situ.
  Rng rng(GetParam() ^ 0x5555);
  for (int trial = 0; trial < 200; ++trial) {
    PlacementInputs in = random_inputs(rng);
    in.insitu_mem_needed = 0;
    in.intransit_mem_free = in.data_bytes + MB;  // both feasible
    bool seen_insitu = false;
    for (double backlog = 0.0; backlog <= 8.0; backlog += 0.5) {
      in.intransit_backlog_seconds = backlog;
      const MiddlewareDecision d = decide_placement(in);
      if (seen_insitu) {
        EXPECT_EQ(d.placement, Placement::InSitu)
            << "flipped back to in-transit at backlog " << backlog;
      }
      seen_insitu = seen_insitu || d.placement == Placement::InSitu;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MiddlewareProperty, ::testing::Values(7, 8, 9));

// --- Resource policy -------------------------------------------------------------

class ResourceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ResourceProperty, SelectionIsMinimalAndFeasible) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    ResourceInputs in;
    in.data_bytes = static_cast<std::size_t>(rng.uniform_int(1, 4000)) * MB;
    in.mem_per_core = static_cast<std::size_t>(rng.uniform_int(16, 512)) * MB;
    in.next_sim_seconds = rng.uniform(0.1, 20.0);
    in.send_seconds = rng.uniform(0.0, 1.0);
    in.recv_seconds = rng.uniform(0.0, 1.0);
    in.min_cores = static_cast<int>(rng.uniform_int(1, 8));
    in.max_cores = static_cast<int>(rng.uniform_int(256, 4096));
    const double work = rng.uniform(1.0, 4000.0);
    in.intransit_seconds = [work](int m) { return work / m; };

    const ResourceDecision d = select_intransit_cores(in);
    EXPECT_GE(d.cores, in.min_cores);
    EXPECT_LE(d.cores, in.max_cores);
    // Memory floor always respected (eq. 10).
    EXPECT_GE(static_cast<std::size_t>(d.cores) * in.mem_per_core,
              std::min(in.data_bytes,
                       static_cast<std::size_t>(in.max_cores) * in.mem_per_core));
    const double budget = in.next_sim_seconds + in.send_seconds;
    if (d.deadline_met) {
      EXPECT_LE(in.intransit_seconds(d.cores) + in.recv_seconds, budget + 1e-12);
      // Minimality: one fewer core violates deadline or a floor (eq. 9).
      if (d.cores > in.min_cores && d.cores > d.memory_floor_cores) {
        EXPECT_GT(in.intransit_seconds(d.cores - 1) + in.recv_seconds, budget);
      }
    } else {
      EXPECT_EQ(d.cores, in.max_cores);
      EXPECT_GT(in.intransit_seconds(in.max_cores) + in.recv_seconds, budget);
    }
  }
}

TEST_P(ResourceProperty, MonotoneInWorkload) {
  // More in-transit work never selects fewer cores.
  Rng rng(GetParam() ^ 0x77);
  for (int trial = 0; trial < 100; ++trial) {
    ResourceInputs in;
    in.data_bytes = 100 * MB;
    in.mem_per_core = 100 * MB;
    in.next_sim_seconds = rng.uniform(1.0, 10.0);
    in.send_seconds = 0.1;
    in.recv_seconds = 0.1;
    in.min_cores = 1;
    in.max_cores = 4096;
    int prev = 0;
    for (double work = 10.0; work <= 10000.0; work *= 3.0) {
      in.intransit_seconds = [work](int m) { return work / m; };
      const ResourceDecision d = select_intransit_cores(in);
      EXPECT_GE(d.cores, prev);
      prev = d.cores;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResourceProperty, ::testing::Values(11, 12, 13));

}  // namespace
}  // namespace xl::runtime
