// BufferPool unit tests plus the determinism proof the pool's contract
// promises: (a) size-bucketed recycling actually reuses allocations and the
// stats ledger balances; (b) acquire/release is safe under concurrent use
// (run under TSan in CI with XL_THREADS=4); (c) pool on/off and pool-size
// sweeps leave every Mode's golden event log byte-identical — pooling changes
// WHERE memory comes from, never values.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/buffer_pool.hpp"
#include "common/thread_pool.hpp"
#include "mesh/box.hpp"
#include "mesh/fab.hpp"
#include "workflow/coupled_workflow.hpp"
#include "workflow/observer.hpp"
#include "workflow/trace_io.hpp"

using namespace xl;
using namespace xl::workflow;

namespace {

TEST(BufferPool, MissThenBucketReuse) {
  BufferPool pool;
  PoolVec<double> a = pool.acquire<double>(100);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_GE(a.capacity(), 128u);  // reserved to the next-pow2 bucket
  const double* raw = a.data();
  pool.release(std::move(a));

  // A smaller request is served from the same 128-element bucket: same
  // allocation comes back, no reallocation.
  PoolVec<double> b = pool.acquire<double>(90);
  EXPECT_EQ(b.size(), 90u);
  EXPECT_EQ(b.data(), raw);

  const PoolStats s = pool.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.releases, 1u);
  EXPECT_EQ(s.trims, 0u);
  pool.release(std::move(b));
}

TEST(BufferPool, TinyAcquiresShareTheMinimumBucket) {
  BufferPool pool;
  PoolVec<std::uint32_t> a = pool.acquire<std::uint32_t>(3);
  EXPECT_GE(a.capacity(), BufferPool::kMinBucketElements);
  pool.release(std::move(a));
  // 3 and 60 both round up to the 64-element bucket, so the second acquire
  // is a hit instead of fragmenting the shelf.
  PoolVec<std::uint32_t> b = pool.acquire<std::uint32_t>(60);
  EXPECT_EQ(pool.stats().hits, 1u);
  pool.release(std::move(b));
}

TEST(BufferPool, ZeroSizeAcquireAndEmptyReleaseAreNoOps) {
  BufferPool pool;
  PoolVec<double> empty = pool.acquire<double>(0);
  EXPECT_TRUE(empty.empty());
  pool.release(std::move(empty));
  const PoolStats s = pool.stats();
  EXPECT_EQ(s.hits + s.misses + s.releases + s.trims, 0u);
  EXPECT_EQ(s.outstanding_bytes, 0u);
}

TEST(BufferPool, GaugesBalanceAcrossAcquireRelease) {
  BufferPool pool;
  PoolVec<double> a = pool.acquire<double>(256);
  PoolStats s = pool.stats();
  EXPECT_EQ(s.outstanding_bytes, 256 * sizeof(double));
  EXPECT_EQ(s.pooled_bytes, 0u);

  pool.release(std::move(a));
  s = pool.stats();
  EXPECT_EQ(s.outstanding_bytes, 0u);
  EXPECT_EQ(s.pooled_bytes, 256 * sizeof(double));
  EXPECT_EQ(s.high_water_outstanding_bytes, 256 * sizeof(double));
  EXPECT_EQ(s.high_water_pooled_bytes, 256 * sizeof(double));

  pool.clear();
  s = pool.stats();
  EXPECT_EQ(s.pooled_bytes, 0u);
  // clear() drops buffers; the high-water marks and counters keep history.
  EXPECT_EQ(s.high_water_pooled_bytes, 256 * sizeof(double));
  EXPECT_EQ(s.releases, 1u);
}

TEST(BufferPool, DisabledPoolTrimsEveryRelease) {
  BufferPool pool;
  pool.set_enabled(false);
  EXPECT_FALSE(pool.enabled());
  PoolVec<double> a = pool.acquire<double>(64);
  pool.release(std::move(a));
  const PoolStats s = pool.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.trims, 1u);
  EXPECT_EQ(s.releases, 0u);
  EXPECT_EQ(s.pooled_bytes, 0u);
}

TEST(BufferPool, CapacityCapTrimsOverflow) {
  BufferPool pool(/*capacity_bytes=*/64 * sizeof(double));
  PoolVec<double> a = pool.acquire<double>(64);
  PoolVec<double> b = pool.acquire<double>(64);
  pool.release(std::move(a));  // fills the cap exactly
  pool.release(std::move(b));  // over the cap -> dropped to the heap
  const PoolStats s = pool.stats();
  EXPECT_EQ(s.releases, 1u);
  EXPECT_EQ(s.trims, 1u);
  EXPECT_EQ(s.pooled_bytes, 64 * sizeof(double));
}

// DESIGN.md §3.10 alignment contract: every pool buffer — fresh miss,
// recycled hit, Scratch, Fab storage — starts on a kPoolAlignment (cache
// line, widest-SIMD) boundary, and the aligned buckets keep the byte ledger
// exact.
bool cache_line_aligned(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % kPoolAlignment == 0;
}

TEST(BufferPool, AcquiresAreCacheLineAligned) {
  BufferPool pool;
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{3}, std::size_t{64}, std::size_t{100},
        std::size_t{1000}, std::size_t{4097}}) {
    PoolVec<double> d = pool.acquire<double>(n);
    EXPECT_TRUE(cache_line_aligned(d.data())) << "fresh acquire of " << n;
    const double* raw = d.data();
    pool.release(std::move(d));
    PoolVec<double> r = pool.acquire<double>(n);
    EXPECT_EQ(r.data(), raw) << "bucket did not recycle for " << n;
    EXPECT_TRUE(cache_line_aligned(r.data())) << "recycled acquire of " << n;
    pool.release(std::move(r));
    PoolVec<std::uint8_t> b = pool.acquire<std::uint8_t>(n);
    EXPECT_TRUE(cache_line_aligned(b.data())) << "byte acquire of " << n;
    pool.release(std::move(b));
  }
  // Alignment must not leak bytes: everything released, the gauge is zero.
  EXPECT_EQ(pool.stats().outstanding_bytes, 0u);
}

TEST(BufferPool, FabAndScratchStorageAreCacheLineAligned) {
  // Fab storage comes from the global pool; the first row of component 0 is
  // the buffer base and must sit on the boundary (interior rows float).
  mesh::Fab fab(mesh::Box::cube({-1, -1, -1}, 5), 2);
  EXPECT_TRUE(cache_line_aligned(fab.flat().data()));
  EXPECT_EQ(fab.row(0, -1, -1), fab.flat().data());
  BufferPool pool;
  Scratch<double> scratch(pool, 17);
  EXPECT_TRUE(cache_line_aligned(scratch.data()));
  Scratch<std::size_t> counts(pool, 5);
  EXPECT_TRUE(cache_line_aligned(counts.data()));
}

TEST(BufferPool, CopiedBytesTapAccumulates) {
  BufferPool pool;
  pool.add_copied_bytes(100);
  pool.add_copied_bytes(28);
  EXPECT_EQ(pool.stats().copied_bytes, 128u);
}

TEST(BufferPool, ScratchRaiiAcquiresAndReleases) {
  BufferPool pool;
  {
    Scratch<std::size_t> scratch(pool, 32);
    ASSERT_EQ(scratch.size(), 32u);
    scratch[0] = 7;
    EXPECT_EQ(scratch.vec().size(), 32u);
    // The gauge tracks capacity: 32 rounds up to the 64-element minimum bucket.
    EXPECT_EQ(pool.stats().outstanding_bytes,
              BufferPool::kMinBucketElements * sizeof(std::size_t));
  }
  const PoolStats s = pool.stats();
  EXPECT_EQ(s.outstanding_bytes, 0u);
  EXPECT_EQ(s.releases, 1u);
}

// Hammer one shared pool from the global ThreadPool's workers (XL_THREADS=4
// in the TSan CI job; degrades to a serial loop when unset). The ledger must
// balance exactly afterwards: every acquire is a hit or a miss, nothing stays
// outstanding, and TSan sees no races on the shelves.
TEST(BufferPool, CrossThreadAcquireReleaseLedgerBalances) {
  BufferPool pool;
  constexpr std::size_t kTasks = 64;
  constexpr int kRounds = 16;
  ThreadPool::TaskGroup group(ThreadPool::global());
  for (std::size_t t = 0; t < kTasks; ++t) {
    group.run([&pool, t] {
      for (int r = 0; r < kRounds; ++r) {
        const std::size_t n = 64 + 16 * ((t + static_cast<std::size_t>(r)) % 8);
        PoolVec<double> buf = pool.acquire<double>(n);
        buf[0] = static_cast<double>(t);
        buf[n - 1] = static_cast<double>(r);
        pool.release(std::move(buf));
      }
    });
  }
  group.wait();
  const PoolStats s = pool.stats();
  EXPECT_EQ(s.hits + s.misses, kTasks * kRounds);
  EXPECT_EQ(s.releases + s.trims, kTasks * kRounds);
  EXPECT_EQ(s.outstanding_bytes, 0u);
}

// Fab round-trips (fill, copy, pack/unpack) must produce identical values
// whether their storage is recycled or fresh. Prime the global pool with a
// dirty buffer of the right size to prove recycled contents never leak.
TEST(BufferPool, FabValuesUnaffectedByRecycledStorage) {
  BufferPool& pool = BufferPool::global();
  const mesh::Box box = mesh::Box::domain({8, 8, 8});

  const bool was_enabled = pool.enabled();
  pool.set_enabled(true);
  {
    PoolVec<double> dirty =
        pool.acquire<double>(static_cast<std::size_t>(box.num_cells()));
    std::fill(dirty.begin(), dirty.end(), -999.0);
    pool.release(std::move(dirty));
  }
  mesh::Fab fab(box, 1, 0.5);  // storage likely recycled from `dirty`
  for (mesh::BoxIterator it(box); it.ok(); ++it) {
    ASSERT_EQ(fab(*it), 0.5);
  }

  PoolVec<double> packed;
  fab.pack_into(box, packed);
  mesh::Fab back(box, 1, 0.0);
  back.unpack(box, packed);
  for (mesh::BoxIterator it(box); it.ok(); ++it) {
    ASSERT_EQ(back(*it), 0.5);
  }
  pool.release(std::move(packed));
  pool.set_enabled(was_enabled);
}

// ---------------------------------------------------------------------------
// Golden-trace bit-identity: pool on, pool off, and pool-size sweeps must
// leave the full event CSV of every Mode byte-identical. The pipeline reports
// pool counters as deltas since RunBegin, and modeled runs allocate no
// payload, so the CSV — timings, bytes, adaptations, pool columns — is
// invariant under any pool state.
// ---------------------------------------------------------------------------

// Same configuration as test_pipeline.cpp's golden_config.
WorkflowConfig golden_config(Mode mode) {
  WorkflowConfig c;
  c.machine = cluster::titan();
  c.sim_cores = 128;
  c.staging_cores = 8;
  c.steps = 15;
  c.mode = mode;
  c.geometry.base_domain = mesh::Box::domain({128, 64, 64});
  c.geometry.nranks = 128;
  c.geometry.tile_size = 8;
  c.geometry.front_speed = 0.01;
  c.memory_model.ncomp = 1;
  c.hints.factor_phases = {{0, {2, 4}}};
  return c;
}

std::string events_csv(Mode mode) {
  CoupledWorkflow wf(golden_config(mode));
  EventLog log;
  wf.set_observer(&log);
  (void)wf.run();
  std::ostringstream os;
  write_events_csv(os, log);
  return os.str();
}

class PoolSweepGolden : public ::testing::TestWithParam<Mode> {};

TEST_P(PoolSweepGolden, EventLogInvariantUnderPoolState) {
  BufferPool& pool = BufferPool::global();
  const bool was_enabled = pool.enabled();

  pool.set_enabled(true);
  pool.set_capacity_bytes(BufferPool::kDefaultCapacityBytes);
  const std::string baseline = events_csv(GetParam());
  EXPECT_FALSE(baseline.empty());

  pool.set_enabled(false);
  pool.clear();
  EXPECT_EQ(events_csv(GetParam()), baseline) << "pool off changed the trace";

  pool.set_enabled(true);
  pool.set_capacity_bytes(std::size_t{1} << 16);  // 64 KiB: trims constantly
  EXPECT_EQ(events_csv(GetParam()), baseline) << "tiny pool changed the trace";

  pool.set_capacity_bytes(std::size_t{1} << 30);  // 1 GiB: trims never
  EXPECT_EQ(events_csv(GetParam()), baseline) << "huge pool changed the trace";

  pool.set_capacity_bytes(BufferPool::kDefaultCapacityBytes);
  pool.set_enabled(was_enabled);
}

INSTANTIATE_TEST_SUITE_P(AllModes, PoolSweepGolden,
                         ::testing::Values(Mode::StaticInSitu,
                                           Mode::StaticInTransit,
                                           Mode::StaticHybrid,
                                           Mode::AdaptiveMiddleware,
                                           Mode::AdaptiveResource,
                                           Mode::Global));

}  // namespace
