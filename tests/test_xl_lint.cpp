// Per-rule fixtures for the determinism-contract linter: for every rule, a
// bad snippet is flagged, the same snippet with a suppression passes, and a
// clean rewrite passes. The snippets live in raw strings, which the linter
// scrubs, so this file itself stays clean under the xl_lint.tree_clean gate.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "xl_lint/lint.hpp"

namespace xl::lint {
namespace {

int count_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(std::count_if(
      findings.begin(), findings.end(),
      [&](const Finding& f) { return f.rule == rule; }));
}

// --- wallclock ---------------------------------------------------------------

TEST(Wallclock, BadFlagged) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
#include <chrono>
double now() { return std::chrono::steady_clock::now().time_since_epoch().count(); }
)cpp");
  EXPECT_EQ(count_rule(f, "wallclock"), 1);
  EXPECT_EQ(f[0].line, 3);
}

TEST(Wallclock, SuppressedPasses) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
// xl-lint: allow(wallclock): measurement-only diagnostic
auto t = std::chrono::steady_clock::now();
)cpp");
  EXPECT_EQ(count_rule(f, "wallclock"), 0);
}

TEST(Wallclock, CleanPasses) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
double now(const Timeline& tl) { return tl.sim_now(); }
)cpp");
  EXPECT_EQ(count_rule(f, "wallclock"), 0);
}

TEST(Wallclock, RngHeaderExempt) {
  const auto f = lint_text("src/common/rng.hpp",
                           "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_EQ(count_rule(f, "wallclock"), 0);
}

// --- raw-random --------------------------------------------------------------

TEST(RawRandom, BadFlagged) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
#include <random>
int roll() { std::mt19937 gen(std::random_device{}()); return rand(); }
)cpp");
  EXPECT_GE(count_rule(f, "raw-random"), 1);
}

TEST(RawRandom, SuppressedPasses) {
  const auto f = lint_text(
      "src/foo.cpp",
      "std::mt19937 gen(7);  // xl-lint: allow(raw-random): fixture only\n");
  EXPECT_EQ(count_rule(f, "raw-random"), 0);
}

TEST(RawRandom, CleanPasses) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
#include "common/rng.hpp"
double draw(xl::Rng& rng) { return rng.uniform(); }
)cpp");
  EXPECT_EQ(count_rule(f, "raw-random"), 0);
}

TEST(RawRandom, IdentifierBoundariesRespected) {
  // `brand(` and `operand(x)` must not match the C rand() pattern.
  const auto f = lint_text("src/foo.cpp", "int a = brand(); int b = operand(2);\n");
  EXPECT_EQ(count_rule(f, "raw-random"), 0);
}

// --- unordered-iter ----------------------------------------------------------

constexpr const char* kUnorderedIter = R"cpp(
#include <unordered_map>
double total(const std::unordered_map<int, double>& costs) {
  double t = 0.0;
  for (const auto& kv : costs) t += kv.second;
  return t;
}
)cpp";

TEST(UnorderedIter, BadFlaggedInScopedLayers) {
  EXPECT_EQ(count_rule(lint_text("src/runtime/foo.cpp", kUnorderedIter),
                       "unordered-iter"),
            1);
  EXPECT_EQ(count_rule(lint_text("src/cluster/foo.cpp", kUnorderedIter),
                       "unordered-iter"),
            1);
  EXPECT_EQ(count_rule(lint_text("src/workflow/foo.cpp", kUnorderedIter),
                       "unordered-iter"),
            1);
}

TEST(UnorderedIter, OutOfScopeLayersPass) {
  // Order only matters where accumulation reaches the timeline; viz is free
  // to iterate hash order.
  EXPECT_EQ(count_rule(lint_text("src/viz/foo.cpp", kUnorderedIter),
                       "unordered-iter"),
            0);
}

TEST(UnorderedIter, ExplicitBeginFlagged) {
  const auto f = lint_text("src/runtime/foo.cpp", R"cpp(
std::unordered_set<int> pending;
void drain() { for (auto it = pending.begin(); it != pending.end(); ++it) {} }
)cpp");
  EXPECT_EQ(count_rule(f, "unordered-iter"), 1);
}

TEST(UnorderedIter, SuppressedPasses) {
  const auto f = lint_text("src/runtime/foo.cpp", R"cpp(
std::unordered_map<int, double> costs;
// xl-lint: allow(unordered-iter): keys are copied out and sorted below
for (const auto& kv : costs) keys.push_back(kv.first);
)cpp");
  EXPECT_EQ(count_rule(f, "unordered-iter"), 0);
}

TEST(UnorderedIter, OrderedContainerPasses) {
  const auto f = lint_text("src/runtime/foo.cpp", R"cpp(
#include <map>
double total(const std::map<int, double>& costs) {
  double t = 0.0;
  for (const auto& kv : costs) t += kv.second;
  return t;
}
)cpp");
  EXPECT_EQ(count_rule(f, "unordered-iter"), 0);
}

// --- float-cast --------------------------------------------------------------

TEST(FloatCast, BadFlagged) {
  const auto f = lint_text("src/foo.cpp",
                           "int n = static_cast<int>(1.5 * scale);\n");
  EXPECT_EQ(count_rule(f, "float-cast"), 1);
}

TEST(FloatCast, MathCallFlagged) {
  const auto f = lint_text(
      "src/foo.cpp", "auto k = static_cast<std::size_t>(std::floor(x));\n");
  EXPECT_EQ(count_rule(f, "float-cast"), 1);
}

TEST(FloatCast, SuppressedPasses) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
// xl-lint: allow(float-cast): value clamped to [0,255] on the previous line
auto b = static_cast<uint8_t>(v * 255.0);
)cpp");
  EXPECT_EQ(count_rule(f, "float-cast"), 0);
}

TEST(FloatCast, GuardedConversionPasses) {
  const auto f = lint_text("src/foo.cpp",
                           "std::size_t n = xl::f2s(1.5 * scale);\n");
  EXPECT_EQ(count_rule(f, "float-cast"), 0);
}

TEST(FloatCast, IntegerToIntegerCastPasses) {
  const auto f = lint_text("src/foo.cpp",
                           "int n = static_cast<int>(count + offset);\n");
  EXPECT_EQ(count_rule(f, "float-cast"), 0);
}

// --- parallel-merge ----------------------------------------------------------

TEST(ParallelMerge, BadFlagged) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
parallel_for(pool, 0, n, [&](std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) out.push_back(i);
});
)cpp");
  EXPECT_EQ(count_rule(f, "parallel-merge"), 1);
}

TEST(ParallelMerge, SuppressedPasses) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
// xl-lint: allow(parallel-merge): guarded by results_mutex_, order irrelevant
parallel_for(pool, 0, n, [&](std::size_t lo, std::size_t hi) {
  out.push_back(lo);
});
)cpp");
  EXPECT_EQ(count_rule(f, "parallel-merge"), 0);
}

TEST(ParallelMerge, LocalContainerPasses) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
parallel_for(pool, 0, n, [&](std::size_t lo, std::size_t hi) {
  std::vector<int> local;
  for (std::size_t i = lo; i < hi; ++i) local.push_back(static_cast<int>(i));
});
)cpp");
  EXPECT_EQ(count_rule(f, "parallel-merge"), 0);
}

TEST(ParallelMerge, DeclarationPasses) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& body);
)cpp");
  EXPECT_EQ(count_rule(f, "parallel-merge"), 0);
}

// --- missing-include ---------------------------------------------------------

TEST(MissingInclude, BadFlagged) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
double norm(double x) { return std::sqrt(x); }
)cpp");
  EXPECT_EQ(count_rule(f, "missing-include"), 1);
}

TEST(MissingInclude, SuppressedPasses) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
// xl-lint: allow(missing-include): header comes in via the PCH
double norm(double x) { return std::sqrt(x); }
)cpp");
  EXPECT_EQ(count_rule(f, "missing-include"), 0);
}

TEST(MissingInclude, IncludedPasses) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
#include <cmath>
double norm(double x) { return std::sqrt(x); }
)cpp");
  EXPECT_EQ(count_rule(f, "missing-include"), 0);
}

// --- banned-symbol -----------------------------------------------------------

TEST(BannedSymbol, BadFlagged) {
  const auto f = lint_text("src/foo.cpp",
                           "const char* v = std::getenv(name);\n");
  EXPECT_EQ(count_rule(f, "banned-symbol"), 1);
}

TEST(BannedSymbol, SleepFlagged) {
  const auto f = lint_text(
      "src/foo.cpp", "std::this_thread::sleep_for(std::chrono::seconds(1));\n");
  EXPECT_EQ(count_rule(f, "banned-symbol"), 1);
}

TEST(BannedSymbol, SuppressedPasses) {
  const auto f = lint_text(
      "src/foo.cpp",
      "const char* v = std::getenv(name);  // xl-lint: allow(banned-symbol): "
      "sanctioned escape hatch\n");
  EXPECT_EQ(count_rule(f, "banned-symbol"), 0);
}

TEST(BannedSymbol, CleanPasses) {
  const auto f = lint_text("src/foo.cpp",
                           "int threads = config.threads;  // via config layer\n");
  EXPECT_EQ(count_rule(f, "banned-symbol"), 0);
}

// --- fab-by-value ------------------------------------------------------------

TEST(FabByValue, BadFlagged) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
void stage(int version, Fab payload);
)cpp");
  EXPECT_EQ(count_rule(f, "fab-by-value"), 1);
}

TEST(FabByValue, QualifiedTypeAndStagedObjectFlagged) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
void stage(mesh::Fab payload, staging::StagedObject obj);
)cpp");
  EXPECT_EQ(count_rule(f, "fab-by-value"), 2);
}

TEST(FabByValue, ReferenceAndMoveAndSharedPass) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
void borrow(const Fab& payload);
void take(Fab&& payload);
void share(std::shared_ptr<const Fab> payload);
void point(const StagedObject* obj);
)cpp");
  EXPECT_EQ(count_rule(f, "fab-by-value"), 0);
}

TEST(FabByValue, LocalsTemplatesAndCallsPass) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
Fab make(const Box& box) {
  Fab out(box, 1);
  std::vector<Fab> parts;
  std::optional<Fab> maybe;
  Fab copy = out;
  return out;
}
)cpp");
  EXPECT_EQ(count_rule(f, "fab-by-value"), 0);
}

TEST(FabByValue, SuppressedPasses) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
// xl-lint: allow(fab-by-value): tiny fixture fab, copy is the point
void stage(Fab payload);
)cpp");
  EXPECT_EQ(count_rule(f, "fab-by-value"), 0);
}

// --- suppression mechanics ---------------------------------------------------

TEST(Suppression, FileWideCoversEveryLine) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
// xl-lint: allow-file(wallclock): this whole file is a benchmark harness
auto a = std::chrono::steady_clock::now();
void later() { auto b = std::chrono::steady_clock::now(); }
)cpp");
  EXPECT_EQ(count_rule(f, "wallclock"), 0);
}

TEST(Suppression, MultipleRulesInOneMarker) {
  const auto f = lint_text(
      "src/foo.cpp",
      "// xl-lint: allow(wallclock, banned-symbol): timing harness\n"
      "auto t = std::chrono::steady_clock::now(); std::getenv(name);\n");
  EXPECT_EQ(count_rule(f, "wallclock"), 0);
  EXPECT_EQ(count_rule(f, "banned-symbol"), 0);
}

TEST(Suppression, MultiLineCommentCarriesToNextCodeLine) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
// xl-lint: allow(wallclock): the explanation of why this is fine runs long
// and wraps onto a second comment line before the code it guards.
auto t = std::chrono::steady_clock::now();
)cpp");
  EXPECT_EQ(count_rule(f, "wallclock"), 0);
}

TEST(Suppression, WrongRuleDoesNotSuppress) {
  const auto f = lint_text(
      "src/foo.cpp",
      "auto t = std::chrono::steady_clock::now();  // xl-lint: allow(float-cast)\n");
  EXPECT_EQ(count_rule(f, "wallclock"), 1);
}

TEST(Suppression, DoesNotLeakPastTheGuardedLine) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
// xl-lint: allow(wallclock): only the next line
auto a = std::chrono::steady_clock::now();
auto b = std::chrono::steady_clock::now();
)cpp");
  EXPECT_EQ(count_rule(f, "wallclock"), 1);
}

// --- scrubbing ---------------------------------------------------------------

TEST(Scrubbing, CommentsAndStringsAreInvisible) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
// std::chrono::steady_clock in a comment is not a finding
const char* msg = "std::getenv(name) inside a string is not a finding";
)cpp");
  EXPECT_TRUE(f.empty());
}

TEST(Scrubbing, DigitSeparatorIsNotACharLiteral) {
  // 1'000'000 must not open a char literal and swallow the rest of the file.
  const auto f = lint_text("src/foo.cpp", R"cpp(
const int big = 1'000'000;
auto t = std::chrono::steady_clock::now();
)cpp");
  EXPECT_EQ(count_rule(f, "wallclock"), 1);
}

// --- CLI-facing basics -------------------------------------------------------

TEST(Rules, AtLeastSevenRegisteredWithSummaries) {
  EXPECT_GE(rules().size(), 7u);
  for (const RuleInfo& r : rules()) {
    EXPECT_FALSE(std::string(r.id).empty());
    EXPECT_FALSE(std::string(r.summary).empty());
  }
}

TEST(Findings, SortedByLine) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
auto b = std::chrono::steady_clock::now();
const char* v = std::getenv(name);
)cpp");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_LT(f[0].line, f[1].line);
}

}  // namespace
}  // namespace xl::lint
