// Per-rule fixtures for the determinism-contract linter: for every rule, a
// bad snippet is flagged, the same snippet with a suppression passes, and a
// clean rewrite passes. The snippets live in raw strings, which the linter
// scrubs, so this file itself stays clean under the xl_lint.tree_clean gate.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "xl_lint/lint.hpp"
#include "xl_lint/report.hpp"

namespace xl::lint {
namespace {

int count_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(std::count_if(
      findings.begin(), findings.end(),
      [&](const Finding& f) { return f.rule == rule; }));
}

// --- wallclock ---------------------------------------------------------------

TEST(Wallclock, BadFlagged) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
#include <chrono>
double now() { return std::chrono::steady_clock::now().time_since_epoch().count(); }
)cpp");
  EXPECT_EQ(count_rule(f, "wallclock"), 1);
  EXPECT_EQ(f[0].line, 3);
}

TEST(Wallclock, SuppressedPasses) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
// xl-lint: allow(wallclock): measurement-only diagnostic
auto t = std::chrono::steady_clock::now();
)cpp");
  EXPECT_EQ(count_rule(f, "wallclock"), 0);
}

TEST(Wallclock, CleanPasses) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
double now(const Timeline& tl) { return tl.sim_now(); }
)cpp");
  EXPECT_EQ(count_rule(f, "wallclock"), 0);
}

TEST(Wallclock, RngHeaderExempt) {
  const auto f = lint_text("src/common/rng.hpp",
                           "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_EQ(count_rule(f, "wallclock"), 0);
}

// --- raw-random --------------------------------------------------------------

TEST(RawRandom, BadFlagged) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
#include <random>
int roll() { std::mt19937 gen(std::random_device{}()); return rand(); }
)cpp");
  EXPECT_GE(count_rule(f, "raw-random"), 1);
}

TEST(RawRandom, SuppressedPasses) {
  const auto f = lint_text(
      "src/foo.cpp",
      "std::mt19937 gen(7);  // xl-lint: allow(raw-random): fixture only\n");
  EXPECT_EQ(count_rule(f, "raw-random"), 0);
}

TEST(RawRandom, CleanPasses) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
#include "common/rng.hpp"
double draw(xl::Rng& rng) { return rng.uniform(); }
)cpp");
  EXPECT_EQ(count_rule(f, "raw-random"), 0);
}

TEST(RawRandom, IdentifierBoundariesRespected) {
  // `brand(` and `operand(x)` must not match the C rand() pattern.
  const auto f = lint_text("src/foo.cpp", "int a = brand(); int b = operand(2);\n");
  EXPECT_EQ(count_rule(f, "raw-random"), 0);
}

// --- unordered-iter ----------------------------------------------------------

constexpr const char* kUnorderedIter = R"cpp(
#include <unordered_map>
double total(const std::unordered_map<int, double>& costs) {
  double t = 0.0;
  for (const auto& kv : costs) t += kv.second;
  return t;
}
)cpp";

TEST(UnorderedIter, BadFlaggedInScopedLayers) {
  EXPECT_EQ(count_rule(lint_text("src/runtime/foo.cpp", kUnorderedIter),
                       "unordered-iter"),
            1);
  EXPECT_EQ(count_rule(lint_text("src/cluster/foo.cpp", kUnorderedIter),
                       "unordered-iter"),
            1);
  EXPECT_EQ(count_rule(lint_text("src/workflow/foo.cpp", kUnorderedIter),
                       "unordered-iter"),
            1);
}

TEST(UnorderedIter, OutOfScopeLayersPass) {
  // Order only matters where accumulation reaches the timeline; viz is free
  // to iterate hash order.
  EXPECT_EQ(count_rule(lint_text("src/viz/foo.cpp", kUnorderedIter),
                       "unordered-iter"),
            0);
}

TEST(UnorderedIter, ExplicitBeginFlagged) {
  const auto f = lint_text("src/runtime/foo.cpp", R"cpp(
std::unordered_set<int> pending;
void drain() { for (auto it = pending.begin(); it != pending.end(); ++it) {} }
)cpp");
  EXPECT_EQ(count_rule(f, "unordered-iter"), 1);
}

TEST(UnorderedIter, SuppressedPasses) {
  const auto f = lint_text("src/runtime/foo.cpp", R"cpp(
std::unordered_map<int, double> costs;
// xl-lint: allow(unordered-iter): keys are copied out and sorted below
for (const auto& kv : costs) keys.push_back(kv.first);
)cpp");
  EXPECT_EQ(count_rule(f, "unordered-iter"), 0);
}

TEST(UnorderedIter, OrderedContainerPasses) {
  const auto f = lint_text("src/runtime/foo.cpp", R"cpp(
#include <map>
double total(const std::map<int, double>& costs) {
  double t = 0.0;
  for (const auto& kv : costs) t += kv.second;
  return t;
}
)cpp");
  EXPECT_EQ(count_rule(f, "unordered-iter"), 0);
}

// --- float-cast --------------------------------------------------------------

TEST(FloatCast, BadFlagged) {
  const auto f = lint_text("src/foo.cpp",
                           "int n = static_cast<int>(1.5 * scale);\n");
  EXPECT_EQ(count_rule(f, "float-cast"), 1);
}

TEST(FloatCast, MathCallFlagged) {
  const auto f = lint_text(
      "src/foo.cpp", "auto k = static_cast<std::size_t>(std::floor(x));\n");
  EXPECT_EQ(count_rule(f, "float-cast"), 1);
}

TEST(FloatCast, SuppressedPasses) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
// xl-lint: allow(float-cast): value clamped to [0,255] on the previous line
auto b = static_cast<uint8_t>(v * 255.0);
)cpp");
  EXPECT_EQ(count_rule(f, "float-cast"), 0);
}

TEST(FloatCast, GuardedConversionPasses) {
  const auto f = lint_text("src/foo.cpp",
                           "std::size_t n = xl::f2s(1.5 * scale);\n");
  EXPECT_EQ(count_rule(f, "float-cast"), 0);
}

TEST(FloatCast, IntegerToIntegerCastPasses) {
  const auto f = lint_text("src/foo.cpp",
                           "int n = static_cast<int>(count + offset);\n");
  EXPECT_EQ(count_rule(f, "float-cast"), 0);
}

// --- parallel-merge ----------------------------------------------------------

TEST(ParallelMerge, BadFlagged) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
parallel_for(pool, 0, n, [&](std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) out.push_back(i);
});
)cpp");
  EXPECT_EQ(count_rule(f, "parallel-merge"), 1);
}

TEST(ParallelMerge, SuppressedPasses) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
// xl-lint: allow(parallel-merge): guarded by results_mutex_, order irrelevant
parallel_for(pool, 0, n, [&](std::size_t lo, std::size_t hi) {
  out.push_back(lo);
});
)cpp");
  EXPECT_EQ(count_rule(f, "parallel-merge"), 0);
}

TEST(ParallelMerge, LocalContainerPasses) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
parallel_for(pool, 0, n, [&](std::size_t lo, std::size_t hi) {
  std::vector<int> local;
  for (std::size_t i = lo; i < hi; ++i) local.push_back(static_cast<int>(i));
});
)cpp");
  EXPECT_EQ(count_rule(f, "parallel-merge"), 0);
}

TEST(ParallelMerge, DeclarationPasses) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& body);
)cpp");
  EXPECT_EQ(count_rule(f, "parallel-merge"), 0);
}

// --- missing-include ---------------------------------------------------------

TEST(MissingInclude, BadFlagged) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
double norm(double x) { return std::sqrt(x); }
)cpp");
  EXPECT_EQ(count_rule(f, "missing-include"), 1);
}

TEST(MissingInclude, SuppressedPasses) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
// xl-lint: allow(missing-include): header comes in via the PCH
double norm(double x) { return std::sqrt(x); }
)cpp");
  EXPECT_EQ(count_rule(f, "missing-include"), 0);
}

TEST(MissingInclude, IncludedPasses) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
#include <cmath>
double norm(double x) { return std::sqrt(x); }
)cpp");
  EXPECT_EQ(count_rule(f, "missing-include"), 0);
}

// --- banned-symbol -----------------------------------------------------------

TEST(BannedSymbol, BadFlagged) {
  const auto f = lint_text("src/foo.cpp",
                           "const char* v = std::getenv(name);\n");
  EXPECT_EQ(count_rule(f, "banned-symbol"), 1);
}

TEST(BannedSymbol, SleepFlagged) {
  const auto f = lint_text(
      "src/foo.cpp", "std::this_thread::sleep_for(std::chrono::seconds(1));\n");
  EXPECT_EQ(count_rule(f, "banned-symbol"), 1);
}

TEST(BannedSymbol, SuppressedPasses) {
  const auto f = lint_text(
      "src/foo.cpp",
      "const char* v = std::getenv(name);  // xl-lint: allow(banned-symbol): "
      "sanctioned escape hatch\n");
  EXPECT_EQ(count_rule(f, "banned-symbol"), 0);
}

TEST(BannedSymbol, CleanPasses) {
  const auto f = lint_text("src/foo.cpp",
                           "int threads = config.threads;  // via config layer\n");
  EXPECT_EQ(count_rule(f, "banned-symbol"), 0);
}

// --- fab-by-value ------------------------------------------------------------

TEST(FabByValue, BadFlagged) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
void stage(int version, Fab payload);
)cpp");
  EXPECT_EQ(count_rule(f, "fab-by-value"), 1);
}

TEST(FabByValue, QualifiedTypeAndStagedObjectFlagged) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
void stage(mesh::Fab payload, staging::StagedObject obj);
)cpp");
  EXPECT_EQ(count_rule(f, "fab-by-value"), 2);
}

TEST(FabByValue, ReferenceAndMoveAndSharedPass) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
void borrow(const Fab& payload);
void take(Fab&& payload);
void share(std::shared_ptr<const Fab> payload);
void point(const StagedObject* obj);
)cpp");
  EXPECT_EQ(count_rule(f, "fab-by-value"), 0);
}

TEST(FabByValue, LocalsTemplatesAndCallsPass) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
Fab make(const Box& box) {
  Fab out(box, 1);
  std::vector<Fab> parts;
  std::optional<Fab> maybe;
  Fab copy = out;
  return out;
}
)cpp");
  EXPECT_EQ(count_rule(f, "fab-by-value"), 0);
}

TEST(FabByValue, SuppressedPasses) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
// xl-lint: allow(fab-by-value): tiny fixture fab, copy is the point
void stage(Fab payload);
)cpp");
  EXPECT_EQ(count_rule(f, "fab-by-value"), 0);
}

// --- row-loop ----------------------------------------------------------------

TEST(RowLoop, BadFlaggedInScopedLayers) {
  const auto f = lint_text("src/analysis/foo.cpp", R"cpp(
double sum_region(const Fab& fab, const Box& region) {
  double sum = 0.0;
  for (BoxIterator it(region); it.ok(); ++it) {
    sum += fab(*it, 0);
  }
  return sum;
}
)cpp");
  EXPECT_EQ(count_rule(f, "row-loop"), 1);
  EXPECT_EQ(f[0].line, 5);
}

TEST(RowLoop, SingleStatementBodyFlagged) {
  const auto f = lint_text("src/viz/foo.cpp", R"cpp(
void fill(Fab& fab, const Box& region) {
  for (BoxIterator it(region); it.ok(); ++it) fab(*it, 0) = 1.0;
}
)cpp");
  EXPECT_EQ(count_rule(f, "row-loop"), 1);
}

TEST(RowLoop, OutOfScopeLayersPass) {
  const auto f = lint_text("src/amr/foo.cpp", R"cpp(
double sum_region(const Fab& fab, const Box& region) {
  double sum = 0.0;
  for (BoxIterator it(region); it.ok(); ++it) sum += fab(*it, 0);
  return sum;
}
)cpp");
  EXPECT_EQ(count_rule(f, "row-loop"), 0);
}

TEST(RowLoop, DeclarationAndNonAccessorUsesPass) {
  const auto f = lint_text("src/analysis/foo.cpp", R"cpp(
void walk(const Hierarchy& h, const Box& region, std::vector<Box>& out) {
  for (BoxIterator it(region); it.ok(); ++it) {
    if (!h.is_finest_at(0, *it)) continue;
    Box cell(*it, *it);
    out.push_back(cell);
  }
}
)cpp");
  EXPECT_EQ(count_rule(f, "row-loop"), 0);
}

TEST(RowLoop, RowTraversalPasses) {
  const auto f = lint_text("src/analysis/foo.cpp", R"cpp(
double sum_region(const Fab& fab, const Box& region) {
  double sum = 0.0;
  mesh::for_each_row(region, [&](int j, int k) {
    const double* r = fab.row(0, j, k);
    for (std::size_t i = 0; i < nx; ++i) sum += r[i];
  });
  return sum;
}
)cpp");
  EXPECT_EQ(count_rule(f, "row-loop"), 0);
}

TEST(RowLoop, SuppressedPasses) {
  const auto f = lint_text("src/analysis/foo.cpp", R"cpp(
double sum_region(const Fab& fab, const Box& region) {
  double sum = 0.0;
  // xl-lint: allow(row-loop): ordered accumulation is the determinism contract
  for (BoxIterator it(region); it.ok(); ++it) sum += fab(*it, 0);
  return sum;
}
)cpp");
  EXPECT_EQ(count_rule(f, "row-loop"), 0);
}

// --- suppression mechanics ---------------------------------------------------

TEST(Suppression, FileWideCoversEveryLine) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
// xl-lint: allow-file(wallclock): this whole file is a benchmark harness
auto a = std::chrono::steady_clock::now();
void later() { auto b = std::chrono::steady_clock::now(); }
)cpp");
  EXPECT_EQ(count_rule(f, "wallclock"), 0);
}

TEST(Suppression, MultipleRulesInOneMarker) {
  const auto f = lint_text(
      "src/foo.cpp",
      "// xl-lint: allow(wallclock, banned-symbol): timing harness\n"
      "auto t = std::chrono::steady_clock::now(); std::getenv(name);\n");
  EXPECT_EQ(count_rule(f, "wallclock"), 0);
  EXPECT_EQ(count_rule(f, "banned-symbol"), 0);
}

TEST(Suppression, MultiLineCommentCarriesToNextCodeLine) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
// xl-lint: allow(wallclock): the explanation of why this is fine runs long
// and wraps onto a second comment line before the code it guards.
auto t = std::chrono::steady_clock::now();
)cpp");
  EXPECT_EQ(count_rule(f, "wallclock"), 0);
}

TEST(Suppression, WrongRuleDoesNotSuppress) {
  const auto f = lint_text(
      "src/foo.cpp",
      "auto t = std::chrono::steady_clock::now();  // xl-lint: allow(float-cast)\n");
  EXPECT_EQ(count_rule(f, "wallclock"), 1);
}

TEST(Suppression, DoesNotLeakPastTheGuardedLine) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
// xl-lint: allow(wallclock): only the next line
auto a = std::chrono::steady_clock::now();
auto b = std::chrono::steady_clock::now();
)cpp");
  EXPECT_EQ(count_rule(f, "wallclock"), 1);
}

// --- scrubbing ---------------------------------------------------------------

TEST(Scrubbing, CommentsAndStringsAreInvisible) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
// std::chrono::steady_clock in a comment is not a finding
const char* msg = "std::getenv(name) inside a string is not a finding";
)cpp");
  EXPECT_TRUE(f.empty());
}

TEST(Scrubbing, DigitSeparatorIsNotACharLiteral) {
  // 1'000'000 must not open a char literal and swallow the rest of the file.
  const auto f = lint_text("src/foo.cpp", R"cpp(
const int big = 1'000'000;
auto t = std::chrono::steady_clock::now();
)cpp");
  EXPECT_EQ(count_rule(f, "wallclock"), 1);
}

// --- unordered-escape (semantic) ---------------------------------------------

TEST(UnorderedEscape, ReturnOfBeginFlagged) {
  const auto f = lint_text("src/amr/foo.cpp", R"cpp(
#include <unordered_set>
#include <vector>
std::vector<int> snapshot(const std::unordered_set<int>& seen) {
  return std::vector<int>(seen.begin(), seen.end());
}
)cpp");
  EXPECT_EQ(count_rule(f, "unordered-escape"), 1);
}

TEST(UnorderedEscape, FloatAccumulationFlagged) {
  const auto f = lint_text("src/amr/foo.cpp", R"cpp(
#include <unordered_map>
double total(const std::unordered_map<int, double>& costs) {
  double t = 0.0;
  for (const auto& kv : costs) t += kv.second;
  return t;
}
)cpp");
  EXPECT_EQ(count_rule(f, "unordered-escape"), 1);
}

TEST(UnorderedEscape, SinkCallFlagged) {
  const auto f = lint_text("src/amr/foo.cpp", R"cpp(
#include <unordered_set>
void dump(const std::unordered_set<int>& ids, Log& log) {
  for (int id : ids) {
    log.record(id);
  }
}
)cpp");
  EXPECT_EQ(count_rule(f, "unordered-escape"), 1);
}

TEST(UnorderedEscape, SortedBeforeEscapePasses) {
  const auto f = lint_text("src/amr/foo.cpp", R"cpp(
#include <algorithm>
#include <unordered_set>
#include <vector>
std::vector<int> snapshot(const std::unordered_set<int>& seen) {
  std::vector<int> out;
  for (int v : seen) {
    out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  return out;
}
)cpp");
  EXPECT_EQ(count_rule(f, "unordered-escape"), 0);
}

TEST(UnorderedEscape, CopyIntoOrderedContainerPasses) {
  const auto f = lint_text("src/amr/foo.cpp", R"cpp(
#include <set>
#include <unordered_set>
int count_sorted(const std::unordered_set<int>& ids) {
  std::set<int> sorted(ids.begin(), ids.end());
  return static_cast<int>(sorted.size());
}
)cpp");
  EXPECT_EQ(count_rule(f, "unordered-escape"), 0);
}

TEST(UnorderedEscape, RuntimeLayerOwnedByLexicalRule) {
  // In src/runtime (and cluster/workflow) the stricter lexical unordered-iter
  // rule owns the diagnosis; the semantic rule stands down to avoid doubles.
  const auto f = lint_text("src/runtime/foo.cpp", R"cpp(
#include <unordered_map>
double total(const std::unordered_map<int, double>& costs) {
  double t = 0.0;
  for (const auto& kv : costs) t += kv.second;
  return t;
}
)cpp");
  EXPECT_EQ(count_rule(f, "unordered-escape"), 0);
  EXPECT_GE(count_rule(f, "unordered-iter"), 1);
}

TEST(UnorderedEscape, SuppressedPasses) {
  const auto f = lint_text("src/amr/foo.cpp", R"cpp(
#include <unordered_map>
double total(const std::unordered_map<int, double>& costs) {
  double t = 0.0;
  // xl-lint: allow(unordered-escape): diagnostics-only total, order-free
  for (const auto& kv : costs) t += kv.second;
  return t;
}
)cpp");
  EXPECT_EQ(count_rule(f, "unordered-escape"), 0);
}

// --- unguarded-field (semantic) ----------------------------------------------

constexpr const char* kUnguardedClass = R"cpp(
#include <mutex>
class Counter {
 public:
  void add(int n);
 private:
  std::mutex mu_;
  int total_ = 0;
};
)cpp";

TEST(UnguardedField, BadFlagged) {
  const auto f = lint_text("src/common/foo.hpp", kUnguardedClass);
  ASSERT_EQ(count_rule(f, "unguarded-field"), 1);
  for (const Finding& x : f) {
    if (x.rule == "unguarded-field") {
      EXPECT_NE(x.message.find("total_"), std::string::npos);
    }
  }
}

TEST(UnguardedField, OutsideSrcAndToolsPasses) {
  EXPECT_EQ(count_rule(lint_text("bench/foo.hpp", kUnguardedClass),
                       "unguarded-field"),
            0);
}

TEST(UnguardedField, AnnotatedFieldsPass) {
  const auto f = lint_text("src/common/foo.hpp", R"cpp(
#include <mutex>
#include <string>
class Counter {
 public:
  void add(int n);
 private:
  std::mutex mu_;
  int total_ XL_GUARDED_BY(mu_) = 0;
  XL_UNGUARDED("written once in the constructor")
  std::string label_;
};
)cpp");
  EXPECT_EQ(count_rule(f, "unguarded-field"), 0);
}

TEST(UnguardedField, ExemptCategoriesPass) {
  // atomics, condition variables, threads, constants, and references never
  // need a guard annotation.
  const auto f = lint_text("src/common/foo.hpp", R"cpp(
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
class Worker {
 private:
  std::mutex mu_;
  std::atomic<bool> stop_{false};
  std::condition_variable cv_;
  std::thread thread_;
  static constexpr int kLimit = 8;
  const int capacity_ = 4;
  Registry& registry_;
};
)cpp");
  EXPECT_EQ(count_rule(f, "unguarded-field"), 0);
}

TEST(UnguardedField, MutexFreeClassPasses) {
  const auto f = lint_text("src/common/foo.hpp", R"cpp(
class Point {
 public:
  int x = 0;
  int y = 0;
};
)cpp");
  EXPECT_EQ(count_rule(f, "unguarded-field"), 0);
}

// --- lock-order (semantic, cross-TU) -----------------------------------------

constexpr const char* kTransferHeader = R"cpp(
#include <mutex>
class Transfer {
 public:
  void credit();
  void debit();
 private:
  std::mutex ledger_;
  std::mutex journal_;
};
)cpp";

TEST(LockOrder, CrossFileCycleFlagged) {
  // The class lives in the header; the conflicting acquisition orders live in
  // the .cpp. Only the cross-TU symbol table can connect them.
  const auto f = lint_texts({{"src/transfer.hpp", kTransferHeader},
                             {"src/transfer.cpp", R"cpp(
void Transfer::credit() {
  std::lock_guard<std::mutex> a(ledger_);
  std::lock_guard<std::mutex> b(journal_);
}
void Transfer::debit() {
  std::lock_guard<std::mutex> a(journal_);
  std::lock_guard<std::mutex> b(ledger_);
}
)cpp"}});
  EXPECT_EQ(count_rule(f, "lock-order"), 1);
}

TEST(LockOrder, ConsistentOrderPasses) {
  const auto f = lint_texts({{"src/transfer.hpp", kTransferHeader},
                             {"src/transfer.cpp", R"cpp(
void Transfer::credit() {
  std::lock_guard<std::mutex> a(ledger_);
  std::lock_guard<std::mutex> b(journal_);
}
void Transfer::debit() {
  std::lock_guard<std::mutex> a(ledger_);
  std::lock_guard<std::mutex> b(journal_);
}
)cpp"}});
  EXPECT_EQ(count_rule(f, "lock-order"), 0);
}

TEST(LockOrder, DoubleAcquisitionFlagged) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
#include <mutex>
void twice(std::mutex& mu) {
  std::lock_guard<std::mutex> a(mu);
  std::lock_guard<std::mutex> b(mu);
}
)cpp");
  EXPECT_EQ(count_rule(f, "lock-order"), 1);
}

TEST(LockOrder, SelfDeadlockThroughCalleeFlagged) {
  // a() calls b() while holding mu_; b() re-locks mu_. One level of call
  // propagation turns that into a self-edge on Pool::mu_.
  const auto f = lint_texts({{"src/pool.hpp", R"cpp(
#include <mutex>
class Pool {
 public:
  void a();
  void b();
 private:
  std::mutex mu_;
};
)cpp"},
                             {"src/pool.cpp", R"cpp(
void Pool::a() {
  std::lock_guard<std::mutex> l(mu_);
  b();
}
void Pool::b() {
  std::lock_guard<std::mutex> l(mu_);
}
)cpp"}});
  EXPECT_EQ(count_rule(f, "lock-order"), 1);
}

TEST(LockOrder, ScopedUnlockBetweenAcquisitionsPasses) {
  // Sequential (non-nested) acquisitions create no ordering edge.
  const auto f = lint_text("src/foo.cpp", R"cpp(
#include <mutex>
void sequential(std::mutex& first, std::mutex& second) {
  {
    std::lock_guard<std::mutex> a(first);
  }
  {
    std::lock_guard<std::mutex> b(second);
  }
}
)cpp");
  EXPECT_EQ(count_rule(f, "lock-order"), 0);
}

// --- parallel-float-merge (semantic) -----------------------------------------

TEST(ParallelFloatMerge, OuterAccumulatorFlagged) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
#include <cstddef>
#include <vector>
double unstable(const std::vector<double>& xs) {
  double sum = 0.0;
  parallel_for(xs.size(), [&](std::size_t i) {
    sum += xs[i];
  });
  return sum;
}
)cpp");
  EXPECT_EQ(count_rule(f, "parallel-float-merge"), 1);
}

TEST(ParallelFloatMerge, PerChunkSlotsPass) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
#include <cstddef>
#include <vector>
double stable(const std::vector<double>& xs, std::size_t chunks) {
  std::vector<double> parts(chunks, 0.0);
  parallel_for_chunks(xs.size(), chunks,
                      [&](std::size_t c, std::size_t lo, std::size_t hi) {
                        for (std::size_t i = lo; i < hi; ++i) parts[c] += xs[i];
                      });
  double sum = 0.0;
  for (std::size_t c = 0; c < chunks; ++c) sum += parts[c];
  return sum;
}
)cpp");
  EXPECT_EQ(count_rule(f, "parallel-float-merge"), 0);
}

TEST(ParallelFloatMerge, LambdaLocalAccumulatorPasses) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
#include <cstddef>
void per_chunk(std::size_t n) {
  parallel_for(n, [&](std::size_t i) {
    double local = 0.0;
    local += 1.0;
    consume(local);
  });
}
)cpp");
  EXPECT_EQ(count_rule(f, "parallel-float-merge"), 0);
}

// --- scratch-escape (semantic) -----------------------------------------------

TEST(ScratchEscape, ReturnOfRawStorageFlagged) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
#include <cstddef>
const double* leak(std::size_t n) {
  Scratch<double> tmp(n);
  return tmp.data();
}
)cpp");
  EXPECT_EQ(count_rule(f, "scratch-escape"), 1);
}

TEST(ScratchEscape, MemberStoreFlagged) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
#include <cstddef>
struct Cache {
  double* view_ = nullptr;
  void refresh(std::size_t n) {
    Scratch<double> tmp(n);
    view_ = tmp.data();
  }
};
)cpp");
  EXPECT_EQ(count_rule(f, "scratch-escape"), 1);
}

TEST(ScratchEscape, DeferredCaptureFlagged) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
#include <cstddef>
void defer(ThreadPool& pool, std::size_t n) {
  ArenaVec<int> ids(n);
  pool.submit([&] { consume(ids); });
}
)cpp");
  EXPECT_EQ(count_rule(f, "scratch-escape"), 1);
}

TEST(ScratchEscape, ScopedUsePasses) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
#include <cstddef>
double checksum(const double* xs, std::size_t n) {
  Scratch<double> tmp(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    tmp.data()[i] = xs[i] + 1.0;
    acc += tmp.data()[i];
  }
  return acc;
}
)cpp");
  EXPECT_EQ(count_rule(f, "scratch-escape"), 0);
}

// --- stale-suppression -------------------------------------------------------

TEST(StaleSuppression, UnusedMarkerFlagged) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
// xl-lint: allow(wallclock): the clock read this guarded is long gone
int x = 0;
)cpp");
  EXPECT_EQ(count_rule(f, "stale-suppression"), 1);
}

TEST(StaleSuppression, UnknownRuleFlagged) {
  const auto f = lint_text(
      "src/foo.cpp", "int x = 0;  // xl-lint: allow(wall-clock): typo'd id\n");
  ASSERT_EQ(count_rule(f, "stale-suppression"), 1);
  EXPECT_NE(f[0].message.find("unknown rule"), std::string::npos);
}

TEST(StaleSuppression, UsedMarkerNotFlagged) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
// xl-lint: allow(wallclock): measurement-only diagnostic
auto t = std::chrono::steady_clock::now();
)cpp");
  EXPECT_EQ(count_rule(f, "stale-suppression"), 0);
}

TEST(StaleSuppression, PartiallyUsedMultiRuleMarkerFlagged) {
  // One marker, two rules; only wallclock fires, so the banned-symbol half of
  // the marker is dead weight and gets reported.
  const auto f = lint_text("src/foo.cpp", R"cpp(
// xl-lint: allow(wallclock, banned-symbol): timing harness
auto t = std::chrono::steady_clock::now();
)cpp");
  EXPECT_EQ(count_rule(f, "stale-suppression"), 1);
}

TEST(StaleSuppression, MarkerInsideStringLiteralIgnored) {
  // A marker spelled inside a string literal is data, not a suppression: it
  // must neither suppress the real finding nor count as a stale marker.
  const auto f = lint_text("src/foo.cpp", R"cpp(
const char* doc = "// xl-lint: allow(wallclock)";
auto t = std::chrono::steady_clock::now();
)cpp");
  EXPECT_EQ(count_rule(f, "wallclock"), 1);
  EXPECT_EQ(count_rule(f, "stale-suppression"), 0);
}

// --- baseline ----------------------------------------------------------------

TEST(Baseline, RoundTripAbsorbsEverything) {
  const auto findings = lint_text("src/foo.cpp", R"cpp(
auto t = std::chrono::steady_clock::now();
const char* v = std::getenv(name);
)cpp");
  ASSERT_EQ(findings.size(), 2u);
  const auto parsed = parse_baseline(baseline_from_findings(findings));
  ASSERT_TRUE(parsed.has_value());
  const BaselineResult r = apply_baseline(findings, *parsed, "baseline.json");
  EXPECT_TRUE(r.kept.empty());
  EXPECT_TRUE(r.stale.empty());
  EXPECT_EQ(r.suppressed, 2u);
}

TEST(Baseline, CannotGrowSilently) {
  // One wallclock finding is grandfathered; the tree now has two. The whole
  // group fails -- a baseline never absorbs growth.
  Baseline b;
  b.entries[{"src/foo.cpp", "wallclock"}] = 1;
  const auto findings = lint_text("src/foo.cpp", R"cpp(
auto a = std::chrono::steady_clock::now();
auto c = std::chrono::steady_clock::now();
)cpp");
  ASSERT_EQ(findings.size(), 2u);
  const BaselineResult r = apply_baseline(findings, b, "baseline.json");
  EXPECT_EQ(r.kept.size(), 2u);
  EXPECT_EQ(r.suppressed, 0u);
}

TEST(Baseline, StaleEntryFlagged) {
  Baseline b;
  b.entries[{"src/foo.cpp", "wallclock"}] = 2;
  const auto findings = lint_text(
      "src/foo.cpp", "auto a = std::chrono::steady_clock::now();\n");
  const BaselineResult r =
      apply_baseline(findings, b, "tools/xl_lint/baseline.json");
  EXPECT_TRUE(r.kept.empty());
  EXPECT_EQ(r.suppressed, 1u);
  ASSERT_EQ(r.stale.size(), 1u);
  EXPECT_EQ(r.stale[0].rule, "stale-baseline");
  EXPECT_EQ(r.stale[0].file, "tools/xl_lint/baseline.json");
}

TEST(Baseline, MalformedRejectedEmptyAccepted) {
  EXPECT_FALSE(parse_baseline("not json").has_value());
  EXPECT_TRUE(parse_baseline("{}").has_value());
  const auto empty = parse_baseline(R"({"version": 1, "entries": []})");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->entries.empty());
}

// --- machine-readable reports ------------------------------------------------

TEST(Reports, JsonAndSarifCarryTheFindings) {
  const auto findings = lint_text(
      "src/foo.cpp", "auto t = std::chrono::steady_clock::now();\n");
  ASSERT_EQ(findings.size(), 1u);
  const std::string j = json_report(findings);
  EXPECT_NE(j.find("\"wallclock\""), std::string::npos);
  EXPECT_NE(j.find("\"count\": 1"), std::string::npos);
  const std::string s = sarif_report(findings);
  EXPECT_NE(s.find("2.1.0"), std::string::npos);
  EXPECT_NE(s.find("wallclock"), std::string::npos);
  EXPECT_NE(s.find("src/foo.cpp"), std::string::npos);
}

// --- CLI-facing basics -------------------------------------------------------

TEST(Rules, AtLeastSevenRegisteredWithSummaries) {
  EXPECT_GE(rules().size(), 7u);
  for (const RuleInfo& r : rules()) {
    EXPECT_FALSE(std::string(r.id).empty());
    EXPECT_FALSE(std::string(r.summary).empty());
  }
}

TEST(Findings, SortedByLine) {
  const auto f = lint_text("src/foo.cpp", R"cpp(
auto b = std::chrono::steady_clock::now();
const char* v = std::getenv(name);
)cpp");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_LT(f[0].line, f[1].line);
}

}  // namespace
}  // namespace xl::lint
