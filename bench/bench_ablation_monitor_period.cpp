// Ablation (DESIGN.md §5.5): the Monitor's sampling cadence (Fig. 3 samples
// "every specified number of simulation time steps"). Sparse sampling reuses
// stale decisions between samples; this sweep quantifies how quickly the
// benefit of adaptation degrades with the period.
#include <iostream>

#include "bench_util.hpp"

using namespace xl;
using namespace xl::workflow;
using xl::bench::RunCache;

namespace {

constexpr int kScale = 1;  // 4K cores

WorkflowConfig config_for(int period) {
  WorkflowConfig c = titan_middleware_experiment(kScale, Mode::AdaptiveMiddleware);
  c.monitor.sampling_period = period;
  return c;
}

std::string key_of(int period) { return "period/" + std::to_string(period); }

void bench_run(benchmark::State& state) {
  const int period = static_cast<int>(state.range(0));
  state.SetLabel(key_of(period));
  xl::bench::run_workflow_benchmark(state, key_of(period),
                                    [=] { return config_for(period); });
}

void print_table() {
  std::cout << "\n=== Ablation: monitor sampling period (steps between adaptations) ===\n";
  Table t({"period k", "overhead (s)", "data moved (GB)", "placement flips"});
  for (int period : {1, 2, 5, 10}) {
    const WorkflowResult& r =
        RunCache::instance().get(key_of(period), [=] { return config_for(period); });
    int flips = 0;
    for (std::size_t i = 1; i < r.steps.size(); ++i) {
      flips += r.steps[i].placement != r.steps[i - 1].placement;
    }
    t.row()
        .cell(period)
        .cell(r.overhead_seconds, 3)
        .cell(static_cast<double>(r.bytes_moved) / 1e9, 1)
        .cell(flips);
  }
  std::cout << t.to_string()
            << "\nLarger periods hold each placement for k steps, reacting late to\n"
               "backlog transitions; on this smoothly-drifting workload the\n"
               "end-to-end cost is nearly flat (the paper's choice of periodic\n"
               "sampling is cheap AND sufficient), while the placement mix and\n"
               "data movement shift by ~10% as k grows.\n";
}

}  // namespace

BENCHMARK(bench_run)->Arg(1)->Arg(2)->Arg(5)->Arg(10)->Unit(benchmark::kMillisecond)->Iterations(1);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  return 0;
}
