// Ablation (DESIGN.md §5.3): how much does the quality of the middleware
// policy's execution-time estimator (eq. 7 inputs) matter? Compares the EWMA
// history estimator (default), last-value, and an injected oracle, plus a
// sweep of the EWMA smoothing factor, on the Titan 4K-core experiment.
#include <iostream>

#include "bench_util.hpp"

using namespace xl;
using namespace xl::workflow;
using xl::bench::RunCache;

namespace {

constexpr int kScale = 1;  // 4K cores

WorkflowConfig config_for(runtime::EstimatorKind kind, double alpha) {
  WorkflowConfig c = titan_middleware_experiment(kScale, Mode::AdaptiveMiddleware);
  c.monitor.estimator = kind;
  c.monitor.ewma_alpha = alpha;
  return c;
}

std::string key_of(runtime::EstimatorKind kind, double alpha) {
  switch (kind) {
    case runtime::EstimatorKind::Ewma:
      return "est/ewma-" + std::to_string(alpha);
    case runtime::EstimatorKind::LastValue:
      return "est/last";
    case runtime::EstimatorKind::Oracle:
      return "est/oracle";
  }
  return "est/?";
}

void bench_run(benchmark::State& state) {
  const auto kind = static_cast<runtime::EstimatorKind>(state.range(0));
  const double alpha = state.range(1) / 100.0;
  state.SetLabel(key_of(kind, alpha));
  xl::bench::run_workflow_benchmark(state, key_of(kind, alpha),
                                    [=] { return config_for(kind, alpha); });
}

void print_table() {
  std::cout << "\n=== Ablation: execution-time estimator for the middleware policy ===\n";
  Table t({"estimator", "overhead (s)", "data moved (GB)", "in-situ", "in-transit"});
  struct Row {
    runtime::EstimatorKind kind;
    double alpha;
    const char* label;
  };
  const Row rows[] = {
      {runtime::EstimatorKind::Oracle, 0.5, "oracle (true costs)"},
      {runtime::EstimatorKind::Ewma, 0.2, "EWMA alpha=0.2"},
      {runtime::EstimatorKind::Ewma, 0.5, "EWMA alpha=0.5 (default)"},
      {runtime::EstimatorKind::Ewma, 0.9, "EWMA alpha=0.9"},
      {runtime::EstimatorKind::LastValue, 0.5, "last value"},
  };
  for (const Row& row : rows) {
    const WorkflowResult& r =
        RunCache::instance().get(key_of(row.kind, row.alpha),
                                 [=] { return config_for(row.kind, row.alpha); });
    t.row()
        .cell(row.label)
        .cell(r.overhead_seconds, 3)
        .cell(static_cast<double>(r.bytes_moved) / 1e9, 1)
        .cell(r.insitu_count)
        .cell(r.intransit_count);
  }
  std::cout << t.to_string()
            << "\nThe policies are tolerant of estimator detail when the workload\n"
               "drifts smoothly (the paper's claim that simple runtime estimation\n"
               "suffices at scale); the oracle row bounds what a perfect predictor\n"
               "could add.\n";
}

}  // namespace

BENCHMARK(bench_run)
    ->Args({static_cast<long>(runtime::EstimatorKind::Oracle), 50})
    ->Args({static_cast<long>(runtime::EstimatorKind::Ewma), 20})
    ->Args({static_cast<long>(runtime::EstimatorKind::Ewma), 50})
    ->Args({static_cast<long>(runtime::EstimatorKind::Ewma), 90})
    ->Args({static_cast<long>(runtime::EstimatorKind::LastValue), 50})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  return 0;
}
