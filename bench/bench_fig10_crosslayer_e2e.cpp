// Fig. 10 reproduction: cumulative end-to-end time of the global (cross-layer)
// adaptation vs local middleware-only adaptation at the four Titan scales,
// with the §5.2.1 user-defined factor phases as application-layer hints.
//
// Paper reference: global adaptation cuts end-to-end overhead by
// 52.16/84.22/97.84/88.87% vs local middleware adaptation.
#include <iostream>

#include "bench_util.hpp"

using namespace xl;
using namespace xl::workflow;
using xl::bench::RunCache;

namespace {

std::string key_of(int scale, Mode mode) {
  return "fig10/" + std::string(titan_scales()[static_cast<std::size_t>(scale)].label) +
         "/" + mode_name(mode);
}

void bench_run(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  const Mode mode = state.range(1) == 0 ? Mode::AdaptiveMiddleware : Mode::Global;
  state.SetLabel(key_of(scale, mode));
  xl::bench::run_workflow_benchmark(state, key_of(scale, mode), [=] {
    return titan_global_experiment(scale, mode);
  });
}

void print_figure() {
  std::cout << "\n=== Figure 10: end-to-end time, local vs global adaptation ===\n";
  Table t({"cores", "adaptation", "sim time", "overhead", "end-to-end",
           "layers engaged"});
  std::vector<double> local_ovh(4), global_ovh(4);
  for (int scale = 0; scale < 4; ++scale) {
    for (Mode mode : {Mode::AdaptiveMiddleware, Mode::Global}) {
      const xl::bench::CachedRun& run =
          RunCache::instance().get_run(key_of(scale, mode), [=] {
            return titan_global_experiment(scale, mode);
          });
      const WorkflowResult& r = run.result;
      // §5.2.4's "employs all the adaptations at these three layers": count
      // the layers that actually fired, from the Decision events.
      bool app = false, res = false, mw = false;
      for (const WorkflowEvent* e :
           xl::bench::events_of_kind(run.events, EventKind::Decision)) {
        app = app || e->app_adapted;
        res = res || e->resource_adapted;
        mw = mw || e->middleware_adapted;
      }
      t.row()
          .cell(titan_scales()[static_cast<std::size_t>(scale)].label)
          .cell(mode == Mode::Global ? "global (app+resource+middleware)"
                                     : "local (middleware only)")
          .cell(r.pure_sim_seconds, 2)
          .cell(r.overhead_seconds, 2)
          .cell(r.end_to_end_seconds, 2)
          .cell(int(app) + int(res) + int(mw));
      (mode == Mode::Global ? global_ovh : local_ovh)[static_cast<std::size_t>(scale)] =
          r.overhead_seconds;
    }
  }
  std::cout << t.to_string();

  Table red({"cores", "overhead cut (global vs local)", "paper"});
  const char* paper[] = {"52.16%", "84.22%", "97.84%", "88.87%"};
  for (std::size_t s = 0; s < 4; ++s) {
    red.row()
        .cell(titan_scales()[s].label)
        .cell(format_percent(1.0 - global_ovh[s] / local_ovh[s]))
        .cell(paper[s]);
  }
  std::cout << "\n" << red.to_string();
}

}  // namespace

BENCHMARK(bench_run)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_figure();
  return 0;
}
