// Fig. 9 + §5.2.3 reproduction: the resource-layer adaptation on the
// memory-intensive 3-D Polytropic Gas workload (Intrepid model, 4K simulation
// cores, 256 preallocated staging cores). Prints the per-step in-transit core
// allocation (static vs adaptive) and the eq. 12 CPU utilization efficiency.
//
// Paper reference: ~50 cores needed at the start, growing with refinement;
// utilization efficiency 87.11% adaptive vs 54.57% static.
#include <iostream>
#include <map>

#include "bench_util.hpp"

using namespace xl;
using namespace xl::workflow;
using xl::bench::RunCache;

namespace {

std::string key_of(Mode mode) { return std::string("fig9/") + mode_name(mode); }

void bench_run(benchmark::State& state) {
  const Mode mode = state.range(0) == 0 ? Mode::StaticInTransit : Mode::AdaptiveResource;
  state.SetLabel(key_of(mode));
  xl::bench::run_workflow_benchmark(state, key_of(mode), [=] {
    return intrepid_resource_experiment(mode);
  });
}

void print_figure() {
  const xl::bench::CachedRun& fixed_run =
      RunCache::instance().get_run(key_of(Mode::StaticInTransit), [] {
        return intrepid_resource_experiment(Mode::StaticInTransit);
      });
  const xl::bench::CachedRun& adaptive_run =
      RunCache::instance().get_run(key_of(Mode::AdaptiveResource), [] {
        return intrepid_resource_experiment(Mode::AdaptiveResource);
      });
  const WorkflowResult& fixed = fixed_run.result;
  const WorkflowResult& adaptive = adaptive_run.result;

  // The per-step series comes from the observer event stream: StepEnd
  // carries the final M and analyzed cells, StepBegin the T_sim, and the
  // in-transit Analysis events the staging-side service time.
  const auto fixed_steps =
      xl::bench::events_of_kind(fixed_run.events, EventKind::StepEnd);
  const auto adaptive_steps =
      xl::bench::events_of_kind(adaptive_run.events, EventKind::StepEnd);
  const auto adaptive_begins =
      xl::bench::events_of_kind(adaptive_run.events, EventKind::StepBegin);
  std::map<int, double> intransit_seconds;
  for (const WorkflowEvent* e :
       xl::bench::events_of_kind(adaptive_run.events, EventKind::Analysis)) {
    if (e->placement == runtime::Placement::InTransit) {
      intransit_seconds[e->step] = e->seconds;
    }
  }

  std::cout << "\n=== Figure 9: in-transit cores per time step ===\n";
  Table t({"step", "static M", "adaptive M", "analyzed cells", "T_intransit (s)",
           "T_sim (s)"});
  for (std::size_t i = 0; i < adaptive_steps.size(); ++i) {
    const WorkflowEvent& e = *adaptive_steps[i];
    const auto it = intransit_seconds.find(e.step);
    t.row()
        .cell(e.step)
        .cell(fixed_steps[i]->intransit_cores)
        .cell(e.intransit_cores)
        .cell(e.cells)
        .cell(it != intransit_seconds.end() ? it->second : 0.0, 3)
        .cell(adaptive_begins[i]->seconds, 3);
  }
  std::cout << t.to_string();

  std::cout << "\n=== Section 5.2.3: CPU utilization efficiency (eq. 12) ===\n";
  Table u({"allocation", "utilization", "paper"});
  u.row().cell("static (256 cores)").cell(format_percent(fixed.utilization_efficiency))
      .cell("54.57%");
  u.row().cell("adaptive").cell(format_percent(adaptive.utilization_efficiency))
      .cell("87.11%");
  std::cout << u.to_string();
  std::cout << "\nsame time-to-solution check: static "
            << format_seconds(fixed.end_to_end_seconds) << " vs adaptive "
            << format_seconds(adaptive.end_to_end_seconds) << "\n";
}

}  // namespace

BENCHMARK(bench_run)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->Iterations(1);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_figure();
  return 0;
}
