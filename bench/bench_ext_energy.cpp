// Extension bench (paper §7 future work: "utilizing such approach on power
// management"): energy comparison of the placement strategies on the Titan
// 4K-core experiment, priced by the activity-based power model. The
// cross-layer adaptation's data reduction and smaller staging allocations
// translate directly into joules.
#include <iostream>

#include "bench_util.hpp"
#include "workflow/energy.hpp"

using namespace xl;
using namespace xl::workflow;
using xl::bench::RunCache;

namespace {

constexpr int kScale = 1;  // 4K cores

WorkflowConfig config_for(Mode mode) {
  return mode == Mode::Global || mode == Mode::AdaptiveResource
             ? titan_global_experiment(kScale, mode)
             : titan_middleware_experiment(kScale, mode);
}

std::string key_of(Mode mode) { return std::string("energy/") + mode_name(mode); }

void bench_run(benchmark::State& state) {
  const Mode mode = static_cast<Mode>(state.range(0));
  state.SetLabel(key_of(mode));
  xl::bench::run_workflow_benchmark(state, key_of(mode),
                                    [=] { return config_for(mode); });
}

void print_table() {
  std::cout << "\n=== Extension: energy accounting across strategies (4K cores) ===\n";
  Table t({"strategy", "compute (MJ)", "staging (MJ)", "idle (MJ)", "network (kJ)",
           "total (MJ)", "vs static in-situ"});
  const Mode modes[] = {Mode::StaticInSitu, Mode::StaticInTransit,
                        Mode::AdaptiveMiddleware, Mode::Global};
  double baseline = 0.0;
  for (Mode mode : modes) {
    const WorkflowResult& r =
        RunCache::instance().get(key_of(mode), [=] { return config_for(mode); });
    const EnergyReport e = estimate_energy(r, config_for(mode).sim_cores);
    const double mj = 1.0e6;
    const double total = e.total_joules() / mj;
    if (mode == Mode::StaticInSitu) baseline = total;
    t.row()
        .cell(mode_name(mode))
        .cell((e.sim_compute_joules + e.insitu_analysis_joules) / mj, 3)
        .cell(e.staging_active_joules / mj, 3)
        .cell((e.sim_idle_joules + e.staging_idle_joules) / mj, 3)
        .cell(e.network_joules / 1.0e3, 3)
        .cell(total, 3)
        .cell(format_percent(total / baseline - 1.0));
  }
  std::cout << t.to_string()
            << "\nThe global cross-layer run spends the least energy: shorter\n"
               "time-to-solution shrinks the per-core-hours, reduced data shrinks\n"
               "the network term, and the resource layer idles fewer staging\n"
               "cores — the quantitative handle the paper's future-work section\n"
               "asks for.\n";
}

}  // namespace

BENCHMARK(bench_run)
    ->Arg(static_cast<long>(Mode::StaticInSitu))
    ->Arg(static_cast<long>(Mode::StaticInTransit))
    ->Arg(static_cast<long>(Mode::AdaptiveMiddleware))
    ->Arg(static_cast<long>(Mode::Global))
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  return 0;
}
