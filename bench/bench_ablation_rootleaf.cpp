// Ablation (DESIGN.md §5.4): the §4.4 root-leaf execution order. Runs the
// global cross-layer adaptation with the paper's leaves-then-roots order,
// reversed (roots first, so the middleware decides before the application
// layer shrinks the data and the resource layer resizes), and uncoordinated
// registry order.
#include <iostream>

#include "bench_util.hpp"

using namespace xl;
using namespace xl::workflow;
using xl::bench::RunCache;

namespace {

constexpr int kScale = 1;  // 4K cores

WorkflowConfig config_for(runtime::PlanOrder order) {
  WorkflowConfig c = titan_global_experiment(kScale, Mode::Global);
  c.plan_order = order;
  return c;
}

const char* order_name(runtime::PlanOrder order) {
  switch (order) {
    case runtime::PlanOrder::LeavesThenRoots: return "leaves->roots (paper)";
    case runtime::PlanOrder::RootsThenLeaves: return "roots->leaves";
    case runtime::PlanOrder::Unordered: return "uncoordinated";
  }
  return "?";
}

std::string key_of(runtime::PlanOrder order) {
  return std::string("rootleaf/") + order_name(order);
}

void bench_run(benchmark::State& state) {
  const auto order = static_cast<runtime::PlanOrder>(state.range(0));
  state.SetLabel(key_of(order));
  xl::bench::run_workflow_benchmark(state, key_of(order),
                                    [=] { return config_for(order); });
}

void print_table() {
  std::cout << "\n=== Ablation: cross-layer mechanism execution order (sec 4.4) ===\n";
  Table t({"order", "overhead (s)", "data moved (GB)", "in-situ", "in-transit"});
  for (auto order : {runtime::PlanOrder::LeavesThenRoots,
                     runtime::PlanOrder::RootsThenLeaves,
                     runtime::PlanOrder::Unordered}) {
    const WorkflowResult& r =
        RunCache::instance().get(key_of(order), [=] { return config_for(order); });
    t.row()
        .cell(order_name(order))
        .cell(r.overhead_seconds, 3)
        .cell(static_cast<double>(r.bytes_moved) / 1e9, 1)
        .cell(r.insitu_count)
        .cell(r.intransit_count);
  }
  std::cout << t.to_string()
            << "\nWith roots executed first the middleware decides on STALE, raw\n"
               "data sizes (the application layer has not reduced yet): it sees a\n"
               "hopelessly slow staging estimate and degenerates to a static\n"
               "placement, never adapting. On this workload that accidentally\n"
               "matches the time-to-solution (the reduction makes staging\n"
               "over-provisioned) but moves ~60% more data and loses exactly the\n"
               "mechanism Figs. 7/8 rely on; the paper's leaves-to-roots order is\n"
               "what keeps every policy's inputs consistent with what executes.\n";
}

}  // namespace

BENCHMARK(bench_run)
    ->Arg(static_cast<long>(runtime::PlanOrder::LeavesThenRoots))
    ->Arg(static_cast<long>(runtime::PlanOrder::RootsThenLeaves))
    ->Arg(static_cast<long>(runtime::PlanOrder::Unordered))
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  return 0;
}
