// Shared helpers for the figure/table bench binaries.
//
// Each binary (a) registers google-benchmark timings for the computation that
// regenerates its figure — workflow runs are registered with Iterations(1)
// since one deterministic run IS the experiment — and (b) prints the
// reproduced series in the paper's layout after the benchmarks finish.
// Results are cached so the benchmark pass and the table printer share one
// execution per configuration. Every cached run records the workflow's
// structured event stream alongside the result, so the figure printers can
// consume per-step series straight from the observer events.
#pragma once

#include <benchmark/benchmark.h>

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "workflow/coupled_workflow.hpp"
#include "workflow/experiment.hpp"
#include "workflow/observer.hpp"

namespace xl::bench {

/// One cached workflow execution: the result plus the observer event stream
/// the run emitted.
struct CachedRun {
  workflow::WorkflowResult result;
  workflow::EventLog events;
};

/// Run-once cache keyed by a config label.
class RunCache {
 public:
  const CachedRun& get_run(const std::string& key,
                           const std::function<workflow::WorkflowConfig()>& make) {
    auto it = runs_.find(key);
    if (it == runs_.end()) {
      auto run = std::make_unique<CachedRun>();
      workflow::CoupledWorkflow wf(make());
      wf.set_observer(&run->events);
      run->result = wf.run();
      it = runs_.emplace(key, std::move(run)).first;
    }
    return *it->second;
  }

  const workflow::WorkflowResult& get(const std::string& key,
                                      const std::function<workflow::WorkflowConfig()>& make) {
    return get_run(key, make).result;
  }

  static RunCache& instance() {
    static RunCache cache;
    return cache;
  }

 private:
  std::map<std::string, std::unique_ptr<CachedRun>> runs_;
};

/// Events of one kind, in emission order.
inline std::vector<const workflow::WorkflowEvent*> events_of_kind(
    const workflow::EventLog& log, workflow::EventKind kind) {
  std::vector<const workflow::WorkflowEvent*> out;
  for (const workflow::WorkflowEvent& e : log.events()) {
    if (e.kind == kind) out.push_back(&e);
  }
  return out;
}

/// Register a benchmark that executes (and caches) one workflow run.
inline void run_workflow_benchmark(benchmark::State& state, const std::string& key,
                                   const std::function<workflow::WorkflowConfig()>& make) {
  for (auto _ : state) {
    const workflow::WorkflowResult& r = RunCache::instance().get(key, make);
    benchmark::DoNotOptimize(r.end_to_end_seconds);
    state.counters["sim_s"] = r.pure_sim_seconds;
    state.counters["overhead_s"] = r.overhead_seconds;
    state.counters["moved_GB"] = static_cast<double>(r.bytes_moved) / 1e9;
  }
}

}  // namespace xl::bench
