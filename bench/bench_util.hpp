// Shared helpers for the figure/table bench binaries.
//
// Each binary (a) registers google-benchmark timings for the computation that
// regenerates its figure — workflow runs are registered with Iterations(1)
// since one deterministic run IS the experiment — and (b) prints the
// reproduced series in the paper's layout after the benchmarks finish.
// Results are cached so the benchmark pass and the table printer share one
// execution per configuration.
#pragma once

#include <benchmark/benchmark.h>

#include <functional>
#include <map>
#include <string>

#include "common/table.hpp"
#include "workflow/coupled_workflow.hpp"
#include "workflow/experiment.hpp"

namespace xl::bench {

/// Run-once cache keyed by a config label.
class RunCache {
 public:
  const workflow::WorkflowResult& get(const std::string& key,
                                      const std::function<workflow::WorkflowConfig()>& make) {
    auto it = results_.find(key);
    if (it == results_.end()) {
      workflow::CoupledWorkflow wf(make());
      it = results_.emplace(key, wf.run()).first;
    }
    return it->second;
  }

  static RunCache& instance() {
    static RunCache cache;
    return cache;
  }

 private:
  std::map<std::string, workflow::WorkflowResult> results_;
};

/// Register a benchmark that executes (and caches) one workflow run.
inline void run_workflow_benchmark(benchmark::State& state, const std::string& key,
                                   const std::function<workflow::WorkflowConfig()>& make) {
  for (auto _ : state) {
    const workflow::WorkflowResult& r = RunCache::instance().get(key, make);
    benchmark::DoNotOptimize(r.end_to_end_seconds);
    state.counters["sim_s"] = r.pure_sim_seconds;
    state.counters["overhead_s"] = r.overhead_seconds;
    state.counters["moved_GB"] = static_cast<double>(r.bytes_moved) / 1e9;
  }
}

}  // namespace xl::bench
