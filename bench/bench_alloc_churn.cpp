// Allocation-churn benchmark for the pooled zero-copy payload path.
//
// Drives the REAL data path of one coupled step — source Fab fill, pack /
// unpack ghost exchange through reused scratch, staging put, and two
// analysis consumers reading the staged payload — on the fig-8 base domain,
// and counts what the allocator sees:
//
//   before:  pool disabled, deep-copy semantics (payload copied into the
//            staging space, each consumer handed its own copy) — the data
//            path as it was prior to the BufferPool/shared_ptr rework.
//   after:   pool enabled, zero-copy semantics (source Fab moved into a
//            shared immutable payload, consumers read it in place).
//
// Reported per steady-state step (warm-up excluded): heap allocations, heap
// bytes, and payload bytes deep-copied (from the BufferPool copy tap). The
// two phases compute a checksum over identical values; the bench aborts if
// they differ, so the numbers always come from bit-identical work.
//
// --quick   smaller domain / fewer steps (CI smoke job)
// --json F  write the report as JSON to file F
// --check   exit non-zero unless the pooled phase meets the compiled-in
//           thresholds (allocations/step and copied-bytes reduction)
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "common/buffer_pool.hpp"
#include "mesh/box.hpp"
#include "mesh/fab.hpp"
#include "staging/space.hpp"

namespace {

// ---------------------------------------------------------------------------
// Global allocation counters. Counting only — every path still defers to the
// default operator new/delete, so behavior is unchanged.
// ---------------------------------------------------------------------------
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

// The pool's AlignedAllocator allocates through the align_val_t forms; count
// those too so pooled (aligned) and plain allocations land in one ledger.
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace xl;

// Pooled steady state must not heap-allocate payload storage; the residual
// per-step allocations are bookkeeping (shared_ptr control block, staging
// index node, query result vector). CI fails the smoke job above this.
constexpr double kMaxAllocsPerStepAfter = 16.0;
// The shared payload path must at least halve the deep-copied bytes.
constexpr double kMinCopiedReduction = 0.5;

constexpr int kWarmupSteps = 3;

struct PhaseReport {
  double allocs_per_step = 0.0;
  double alloc_bytes_per_step = 0.0;
  double copied_bytes_per_step = 0.0;
  double checksum = 0.0;
};

double consume(const mesh::Fab& fab) {
  double sum = 0.0;
  for (double v : fab.flat()) sum += v;
  return sum;
}

/// One coupled step on the real data path. `deep_copy` selects the
/// pre-rework semantics: payload copied into staging, each consumer handed
/// its own copy of the staged Fab.
double run_step(staging::StagingSpace& space, const mesh::Box& domain, int step,
                bool deep_copy, PoolVec<double>& scratch, mesh::Fab& ghost) {
  mesh::Fab src(domain, 1);
  std::span<double> cells = src.flat();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    cells[i] = 0.25 * static_cast<double>(step + 1) +
               1.0 / static_cast<double>(i % 97 + 1);
  }

  // Ghost exchange: pack into reused scratch, unpack into the persistent
  // ghost Fab (the plotfile / transport hop of the step).
  src.pack_into(domain, scratch);
  ghost.unpack(domain, scratch);

  // Hand the payload to staging: deep copy (before) vs move (after).
  std::shared_ptr<const mesh::Fab> staged =
      deep_copy ? std::make_shared<const mesh::Fab>(src)
                : std::make_shared<const mesh::Fab>(std::move(src));
  const std::size_t bytes = staged->bytes();
  space.put(step, domain, 1, bytes, std::move(staged));

  const auto hits = space.query(step, domain);
  double checksum = 0.0;
  for (const staging::StagedObject* obj : hits) {
    // Two in-transit consumers of the same staged payload. The old value
    // semantics handed each its own deep copy; shared ownership lets both
    // read the one buffer.
    for (int consumer = 0; consumer < 2; ++consumer) {
      if (deep_copy) {
        mesh::Fab private_copy(*obj->payload);
        checksum += consume(private_copy);
      } else {
        checksum += consume(*obj->payload);
      }
    }
  }
  space.erase_version(step);  // analysis done: payload refcount drops to zero
  return checksum + consume(ghost);
}

PhaseReport run_phase(const mesh::Box& domain, int steps, bool deep_copy) {
  BufferPool& pool = BufferPool::global();
  pool.clear();
  pool.set_enabled(!deep_copy);

  staging::StagingSpace space(/*num_servers=*/4,
                              /*memory_per_server=*/std::size_t{1} << 30);
  PoolVec<double> scratch;
  mesh::Fab ghost(domain, 1);
  PhaseReport report;

  for (int step = 0; step < kWarmupSteps; ++step) {
    report.checksum += run_step(space, domain, step, deep_copy, scratch, ghost);
  }

  const std::uint64_t alloc_count0 = g_alloc_count.load(std::memory_order_relaxed);
  const std::uint64_t alloc_bytes0 = g_alloc_bytes.load(std::memory_order_relaxed);
  const std::uint64_t copied0 = pool.stats().copied_bytes;

  for (int step = kWarmupSteps; step < kWarmupSteps + steps; ++step) {
    report.checksum += run_step(space, domain, step, deep_copy, scratch, ghost);
  }

  const double n = static_cast<double>(steps);
  report.allocs_per_step =
      static_cast<double>(g_alloc_count.load(std::memory_order_relaxed) - alloc_count0) / n;
  report.alloc_bytes_per_step =
      static_cast<double>(g_alloc_bytes.load(std::memory_order_relaxed) - alloc_bytes0) / n;
  report.copied_bytes_per_step =
      static_cast<double>(pool.stats().copied_bytes - copied0) / n;

  pool.release(std::move(scratch));
  pool.set_enabled(true);
  return report;
}

void print_phase(const char* name, const PhaseReport& r) {
  std::printf("%-8s allocs/step %10.1f   alloc MB/step %9.3f   copied MB/step %9.3f\n",
              name, r.allocs_per_step, r.alloc_bytes_per_step / 1e6,
              r.copied_bytes_per_step / 1e6);
}

void write_json(const std::string& path, const mesh::Box& domain, int steps,
                bool quick, const PhaseReport& before, const PhaseReport& after,
                double alloc_reduction, double copied_reduction) {
  std::ofstream os(path);
  os << "{\n"
     << "  \"bench\": \"alloc_churn\",\n"
     << "  \"domain\": [" << domain.size()[0] << ", " << domain.size()[1] << ", "
     << domain.size()[2] << "],\n"
     << "  \"steps\": " << steps << ",\n"
     << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
     << "  \"before\": {\"allocs_per_step\": " << before.allocs_per_step
     << ", \"alloc_bytes_per_step\": " << before.alloc_bytes_per_step
     << ", \"copied_bytes_per_step\": " << before.copied_bytes_per_step << "},\n"
     << "  \"after\": {\"allocs_per_step\": " << after.allocs_per_step
     << ", \"alloc_bytes_per_step\": " << after.alloc_bytes_per_step
     << ", \"copied_bytes_per_step\": " << after.copied_bytes_per_step << "},\n"
     << "  \"alloc_reduction\": " << alloc_reduction << ",\n"
     << "  \"copied_reduction\": " << copied_reduction << ",\n"
     << "  \"max_allocs_per_step_after\": " << kMaxAllocsPerStepAfter << ",\n"
     << "  \"min_copied_reduction\": " << kMinCopiedReduction << "\n"
     << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool check = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: bench_alloc_churn [--quick] [--check] [--json FILE]\n";
      return 2;
    }
  }

  // Fig-8 base domain (2K-core Titan scale); quick mode shrinks it for CI.
  const mesh::Box domain = quick ? mesh::Box::domain({64, 32, 32})
                                 : mesh::Box::domain({128, 64, 64});
  const int steps = quick ? 6 : 12;

  const PhaseReport before = run_phase(domain, steps, /*deep_copy=*/true);
  const PhaseReport after = run_phase(domain, steps, /*deep_copy=*/false);

  if (before.checksum != after.checksum) {
    std::cerr << "FAIL: pooled phase changed values (checksum " << after.checksum
              << " vs " << before.checksum << ")\n";
    return 1;
  }

  const double alloc_reduction =
      before.allocs_per_step > 0.0
          ? 1.0 - after.allocs_per_step / before.allocs_per_step
          : 0.0;
  const double copied_reduction =
      before.copied_bytes_per_step > 0.0
          ? 1.0 - after.copied_bytes_per_step / before.copied_bytes_per_step
          : 0.0;

  std::printf("=== alloc churn: %d steps (+%d warm-up), domain %d x %d x %d ===\n",
              steps, kWarmupSteps, domain.size()[0], domain.size()[1],
              domain.size()[2]);
  print_phase("before", before);
  print_phase("after", after);
  std::printf("reduction: allocs %.1f%%   copied bytes %.1f%%   (values bit-identical)\n",
              100.0 * alloc_reduction, 100.0 * copied_reduction);

  if (!json_path.empty()) {
    write_json(json_path, domain, steps, quick, before, after, alloc_reduction,
               copied_reduction);
  }

  if (check) {
    bool ok = true;
    if (after.allocs_per_step > kMaxAllocsPerStepAfter) {
      std::cerr << "FAIL: pooled steady state allocates " << after.allocs_per_step
                << " per step (threshold " << kMaxAllocsPerStepAfter << ")\n";
      ok = false;
    }
    if (copied_reduction < kMinCopiedReduction) {
      std::cerr << "FAIL: copied-bytes reduction " << copied_reduction
                << " below threshold " << kMinCopiedReduction << "\n";
      ok = false;
    }
    if (!ok) return 1;
    std::printf("check: OK (allocs/step %.1f <= %.0f, copied reduction %.0f%% >= %.0f%%)\n",
                after.allocs_per_step, kMaxAllocsPerStepAfter,
                100.0 * copied_reduction, 100.0 * kMinCopiedReduction);
  }
  return 0;
}
