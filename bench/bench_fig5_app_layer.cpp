// Fig. 5 reproduction: application-layer adaptation of the data's spatial
// resolution under shrinking memory availability (Polytropic Gas, Intrepid
// model, 500 MB cores). Prints, per step, the worst rank's real-time memory
// availability, the memory the reduction needs at the MIN and MAX acceptable
// resolutions, the adaptively selected consumption, and the chosen factor.
//
// Paper behaviour checked: with memory available the minimum factor (highest
// resolution) is selected; around step ~31 availability drops below the
// high-resolution requirement and the factor climbs; by the final steps the
// adaptive resolution reaches the minimum.
#include <benchmark/benchmark.h>
#include <cstdint>

#include <algorithm>
#include <iostream>

#include "amr/memory_model.hpp"
#include "amr/synthetic.hpp"
#include "common/table.hpp"
#include "runtime/app_policy.hpp"
#include "workflow/experiment.hpp"

using namespace xl;

namespace {

constexpr int kSteps = 40;
/// Of a 512 MB BG/P core, the CNK kernel, Chombo metadata and communication
/// buffers leave roughly half for solver state + analysis staging; the
/// availability trace below is capacity minus the modeled per-rank peak.
constexpr std::size_t kCapacity = std::size_t{352} << 20;

/// The §5.2.1 user hints: {2,4} for the first half, {2,4,8,16} for the second.
const runtime::UserHints& hints() {
  static const runtime::UserHints h = [] {
    runtime::UserHints hints;
    hints.factor_phases = {{0, {2, 4}}, {kSteps / 2, {2, 4, 8, 16}}};
    return hints;
  }();
  return h;
}

struct StepPoint {
  int step;
  double avail_mb;
  double min_res_mb;   // requirement at the smallest factor (max resolution)
  double max_res_mb;   // requirement at the largest factor (min resolution)
  double adaptive_mb;  // requirement at the chosen factor
  int factor;
  bool constrained;
};

StepPoint evaluate(int step) {
  // Fig. 5 tracks ONE processor. We follow the worst rank of a 1024-rank
  // decomposition (refinement concentrates there, as in Fig. 1) with the
  // analysis/staging buffers resident per cell — the combination that drives
  // this processor toward its memory ceiling over the run.
  static amr::SyntheticAmrEvolution evo(workflow::intrepid_geometry(1024));
  amr::MemoryModelConfig mm = workflow::intrepid_memory_model();
  mm.analysis_bytes_per_cell = 100.0;
  const amr::SyntheticStep geom = evo.at(step);
  const auto peaks = amr::per_rank_peak_bytes(geom.levels, mm);
  const std::size_t worst = *std::max_element(peaks.begin(), peaks.end());
  const std::size_t avail = worst >= kCapacity ? 0 : kCapacity - worst;

  // The worst rank's share of the refined (analyzed) data.
  std::int64_t refined = 0;
  for (std::size_t l = 1; l < geom.levels.size(); ++l) {
    const auto cells = geom.levels[l].cells_per_rank();
    refined += *std::max_element(cells.begin(), cells.end());
  }
  const auto cells = static_cast<std::size_t>(refined);

  const std::vector<int>& factors = hints().factors_at(step);
  const runtime::AppDecision d =
      runtime::select_downsample_factor(factors, cells, 5, avail);

  auto mb = [](std::size_t b) { return static_cast<double>(b) / (1 << 20); };
  StepPoint p;
  p.step = step;
  p.avail_mb = mb(avail);
  p.min_res_mb = mb(analysis::reduction_scratch_bytes(cells, 5, factors.front()));
  p.max_res_mb = mb(analysis::reduction_scratch_bytes(cells, 5, factors.back()));
  p.adaptive_mb = mb(d.scratch_bytes);
  p.factor = d.factor;
  p.constrained = d.memory_constrained;
  return p;
}

void bench_policy(benchmark::State& state) {
  for (auto _ : state) {
    const StepPoint p = evaluate(static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(p.factor);
  }
}

void print_figure() {
  std::cout << "\n=== Figure 5: application-layer adaptation of spatial resolution ===\n";
  Table t({"step", "availability (MB)", "need @MIN X (MB)", "need @MAX X (MB)",
           "adaptive need (MB)", "factor X", "note"});
  int first_raised = -1;
  for (int step = 0; step < kSteps; ++step) {
    const StepPoint p = evaluate(step);
    const std::vector<int>& factors = hints().factors_at(step);
    if (first_raised < 0 && p.factor > factors.front()) first_raised = step;
    t.row()
        .cell(p.step)
        .cell(p.avail_mb, 1)
        .cell(p.min_res_mb, 2)
        .cell(p.max_res_mb, 2)
        .cell(p.adaptive_mb, 2)
        .cell(p.factor)
        .cell(p.constrained ? "memory-constrained" : (p.factor > factors.front() ? "raised" : ""));
  }
  std::cout << t.to_string();
  std::cout << "\nFactor first raised above the minimum at step "
            << first_raised
            << " (paper: step 31); the paper's availability-driven ramp of the\n"
               "down-sampling factor is reproduced with the {2,4} -> {2,4,8,16}\n"
               "hint phases.\n";
}

}  // namespace

BENCHMARK(bench_policy)->Arg(0)->Arg(20)->Arg(39)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_figure();
  return 0;
}
