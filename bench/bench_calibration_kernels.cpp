// Calibration micro-benchmarks: measure the REAL kernels (unsplit Godunov
// advance for both physics, marching cubes, downsampling, entropy, ghost
// exchange) on this host and report ns/cell. These are the measurements
// grounding the DES cost-model constants (cluster::KernelCosts): the
// *ratios* between kernels — what the adaptation policies actually respond
// to — carry over to the machine models.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>
#include <memory>

#include "amr/advection_diffusion.hpp"
#include "amr/amr_simulation.hpp"
#include "amr/polytropic_gas.hpp"
#include "analysis/downsample.hpp"
#include "analysis/entropy.hpp"
#include "cluster/cost_model.hpp"
#include "common/table.hpp"
#include "viz/marching_cubes.hpp"

using namespace xl;

namespace {

constexpr int kN = 32;

template <typename Physics>
amr::AmrSimulation& simulation() {
  static amr::AmrSimulation sim = [] {
    amr::AmrConfig cfg;
    cfg.base_domain = mesh::Box::domain({kN, kN, kN});
    cfg.max_levels = 1;
    cfg.max_box_size = kN;
    cfg.nghost = 2;
    cfg.nranks = 1;
    amr::AmrSimulation s(cfg, std::make_shared<Physics>(), {}, 0.3);
    s.initialize();
    return s;
  }();
  return sim;
}

void bench_euler_advance(benchmark::State& state) {
  auto& sim = simulation<amr::PolytropicGas>();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.advance().dt);
  }
  state.SetItemsProcessed(state.iterations() * kN * kN * kN);
}

void bench_advection_advance(benchmark::State& state) {
  auto& sim = simulation<amr::AdvectionDiffusion>();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.advance().dt);
  }
  state.SetItemsProcessed(state.iterations() * kN * kN * kN);
}

const mesh::Fab& sample_field() {
  static const mesh::Fab f = [] {
    mesh::Fab fab(mesh::Box::domain({kN, kN, kN}), 1);
    const double c = kN / 2.0;
    for (mesh::BoxIterator it(fab.box()); it.ok(); ++it) {
      const double dx = (*it)[0] + 0.5 - c, dy = (*it)[1] + 0.5 - c,
                   dz = (*it)[2] + 0.5 - c;
      fab(*it) = std::sqrt(dx * dx + dy * dy + dz * dz) - kN / 4.0;
    }
    return fab;
  }();
  return f;
}

void bench_marching_cubes(benchmark::State& state) {
  const mesh::Fab& f = sample_field();
  const mesh::Box cells(f.box().lo(), f.box().hi() - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(viz::extract_isosurface(f, cells, 0.0).triangle_count());
  }
  state.SetItemsProcessed(state.iterations() * cells.num_cells());
}

void bench_downsample_stride(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::downsample(sample_field(), 2, analysis::DownsampleMethod::Stride).size());
  }
  state.SetItemsProcessed(state.iterations() * kN * kN * kN / 8);
}

void bench_downsample_average(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::downsample(sample_field(), 2, analysis::DownsampleMethod::Average).size());
  }
  state.SetItemsProcessed(state.iterations() * kN * kN * kN / 8);
}

void bench_entropy(benchmark::State& state) {
  const mesh::Fab& f = sample_field();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::block_entropy(f, f.box()));
  }
  state.SetItemsProcessed(state.iterations() * kN * kN * kN);
}

void bench_ghost_exchange(benchmark::State& state) {
  const mesh::Box domain = mesh::Box::domain({kN, kN, kN});
  const mesh::BoxLayout layout = mesh::balance(mesh::decompose(domain, kN / 2), 4);
  mesh::LevelData data(layout, 5, 2);
  const mesh::Copier copier(layout, 2, domain, true);
  for (auto _ : state) {
    data.exchange(copier);
    benchmark::DoNotOptimize(data.bytes());
  }
  state.SetItemsProcessed(state.iterations() * kN * kN * kN);
}

void print_summary() {
  std::cout << "\n=== Cost-model constants in use (cluster::KernelCosts defaults) ===\n";
  const cluster::KernelCosts costs;
  Table t({"kernel", "flops/cell (model)", "role in the experiments"});
  t.row().cell("Euler (PolytropicGas) advance").cell(costs.sim_euler_flops_per_cell, 0)
      .cell("Intrepid workload (Figs. 1, 5, 9)");
  t.row().cell("Advection-Diffusion advance").cell(costs.sim_advect_flops_per_cell, 0)
      .cell("Titan workload (Figs. 7, 8, 10, 11)");
  t.row().cell("marching cubes: scan").cell(costs.mc_scan_flops_per_cell, 0)
      .cell("per cell examined");
  t.row().cell("marching cubes: triangulate").cell(costs.mc_active_flops_per_cell, 0)
      .cell("per isosurface-crossing cell");
  t.row().cell("downsample").cell(costs.reduce_flops_per_cell, 0)
      .cell("per output cell (app layer)");
  t.row().cell("entropy").cell(costs.entropy_flops_per_cell, 0)
      .cell("per cell histogrammed");
  std::cout << t.to_string()
            << "\nThe items_per_second counters above are the measured host rates for\n"
               "the real kernels; EXPERIMENTS.md maps them to the per-experiment\n"
               "constants (which fold in the effects a single-kernel microbenchmark\n"
               "cannot see: ghost exchange, subcycling, staging ingest).\n";
}

}  // namespace

BENCHMARK(bench_euler_advance)->Unit(benchmark::kMillisecond);
BENCHMARK(bench_advection_advance)->Unit(benchmark::kMillisecond);
BENCHMARK(bench_marching_cubes)->Unit(benchmark::kMillisecond);
BENCHMARK(bench_downsample_stride)->Unit(benchmark::kMillisecond);
BENCHMARK(bench_downsample_average)->Unit(benchmark::kMillisecond);
BENCHMARK(bench_entropy)->Unit(benchmark::kMillisecond);
BENCHMARK(bench_ghost_exchange)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_summary();
  return 0;
}
