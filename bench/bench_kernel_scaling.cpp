// Kernel raw-speed and thread-scaling benchmark.
//
// Section 1 — row/SIMD speedup: the seed per-cell kernels (every access
// through the bounds-checked `fab(*it, c)` path, bit-by-bit stream packing)
// are kept alive HERE as reference replicas, timed single-thread against the
// library's flat-row implementations. The replicas also serve as oracles: the
// library output must match them EXACTLY (bit-for-bit / byte-for-byte), which
// is the determinism contract of DESIGN.md §3.10 made executable. `--check`
// additionally gates the speedups (>= kMinSpeedup on >= kMinKernelsFast of
// the four kernels).
//
// Section 2 — thread scaling: run the kernels serially and on the shared
// xl::ThreadPool at 2 and 4 workers and report speedups; outputs are
// bit-identical across thread counts by construction, asserted on every run.
// This grounds cluster::KernelCosts::thread_efficiency.
//
// Flags:
//   --quick   smaller field, fewer repeats (CI smoke)
//   --json F  write the report as JSON to file F
//   --check   exit non-zero unless the row-path speedup gates pass
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "amr/advection_diffusion.hpp"
#include "analysis/compress.hpp"
#include "analysis/downsample.hpp"
#include "analysis/entropy.hpp"
#include "common/simd.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "viz/marching_cubes.hpp"

using namespace xl;

namespace {

constexpr int kN = 128;       // field edge: large enough for threading to win
constexpr int kRepeats = 5;   // keep the min — least-noise estimate

// --quick (CI smoke): smaller field, fewer repeats. Timings get noisier but
// the bit-identity assertions are just as strict.
constexpr int kQuickN = 64;
constexpr int kQuickRepeats = 2;
int g_repeats = kRepeats;

// --check gates: the flat-row path must beat the seed per-cell path by at
// least kMinSpeedup on at least kMinKernelsFast of the four kernels,
// single-threaded. (Bit-identity is asserted unconditionally.)
constexpr double kMinSpeedup = 2.0;
constexpr int kMinKernelsFast = 3;

mesh::Fab sample_field(int n) {
  mesh::Fab fab(mesh::Box::domain({n, n, n}), 1);
  const double c = n / 2.0;
  for (mesh::BoxIterator it(fab.box()); it.ok(); ++it) {
    const double dx = (*it)[0] + 0.5 - c, dy = (*it)[1] + 0.5 - c,
                 dz = (*it)[2] + 0.5 - c;
    fab(*it) = std::sqrt(dx * dx + dy * dy + dz * dz) - n / 4.0;
  }
  return fab;
}

double min_seconds(const std::function<void()>& body) {
  double best = 0.0;
  for (int r = 0; r < g_repeats; ++r) {
    // xl-lint: allow(wallclock): this bench MEASURES real kernel wall time; the
    // readings are report-only output and never feed a simulated timeline.
    const auto t0 = std::chrono::steady_clock::now();
    body();
    // xl-lint: allow(wallclock): see above — measurement-only.
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

double checksum(std::span<const double> data) {
  double sum = 0.0;
  for (double v : data) sum += v;
  return sum;
}

// --- seed per-cell reference replicas ----------------------------------------
// Frozen copies of the pre-row-traversal kernels: every cell access funnels
// through the bounds-checked fab(p, c) operator and compression packs the
// stream one bit at a time. They are the baseline the speedup table measures
// against AND the oracle the library output is compared to.

double seed_block_entropy(const mesh::Fab& fab, const mesh::Box& region,
                          const analysis::EntropyConfig& config = {}) {
  const mesh::Box scan = fab.box() & region;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (mesh::BoxIterator it(scan); it.ok(); ++it) {
    const double v = fab(*it, config.comp);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi <= lo) return 0.0;
  const auto bins = static_cast<std::size_t>(config.bins);
  const double scale = static_cast<double>(config.bins) / (hi - lo);
  const double last_bin = static_cast<double>(config.bins - 1);
  std::vector<std::size_t> counts(bins, 0);
  std::size_t total = 0;
  for (mesh::BoxIterator it(scan); it.ok(); ++it) {
    const double idx = (fab(*it, config.comp) - lo) * scale;
    if (std::isnan(idx)) continue;
    // xl-lint: allow(float-cast): NaN dropped and range clamped above.
    ++counts[static_cast<std::size_t>(std::clamp(idx, 0.0, last_bin))];
    ++total;
  }
  if (total == 0) return 0.0;
  double entropy = 0.0;
  for (std::size_t b = 0; b < bins; ++b) {
    if (counts[b] == 0) continue;
    const double p = static_cast<double>(counts[b]) / static_cast<double>(total);
    entropy -= p * std::log2(p);
  }
  return entropy;
}

mesh::Fab seed_downsample_average(const mesh::Fab& src, int factor) {
  const mesh::IntVect rvec = mesh::IntVect::uniform(factor);
  mesh::Fab out(src.box().coarsen(rvec), src.ncomp());
  const double inv_vol = 1.0 / static_cast<double>(factor) / factor / factor;
  const std::size_t full = static_cast<std::size_t>(factor) * factor * factor;
  for (int c = 0; c < src.ncomp(); ++c) {
    for (mesh::BoxIterator it(out.box()); it.ok(); ++it) {
      const mesh::IntVect base = (*it).refine(rvec);
      const mesh::Box children =
          mesh::Box(base, base + (factor - 1)) & src.box();
      double sum = 0.0;
      for (mesh::BoxIterator fit(children); fit.ok(); ++fit) sum += src(*fit, c);
      out(*it, c) = static_cast<std::size_t>(children.num_cells()) == full
                        ? sum * inv_vol
                        : sum / static_cast<double>(children.num_cells());
    }
  }
  return out;
}

void seed_linear_fit(const double* v, std::size_t n, double& a, double& b) {
  if (n == 1) {
    a = v[0];
    b = 0.0;
    return;
  }
  double sum_v = 0.0, sum_iv = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum_v += v[i];
    sum_iv += static_cast<double>(i) * v[i];
  }
  const double nn = static_cast<double>(n);
  const double sum_i = nn * (nn - 1.0) / 2.0;
  const double sum_ii = (nn - 1.0) * nn * (2.0 * nn - 1.0) / 6.0;
  const double denom = nn * sum_ii - sum_i * sum_i;
  b = denom != 0.0 ? (nn * sum_iv - sum_i * sum_v) / denom : 0.0;
  a = (sum_v - b * sum_i) / nn;
}

/// Seed encoder: scalar quantize straight off the residual expression, then
/// set the packed stream one bit at a time.
std::vector<std::uint8_t> seed_compress_payload(
    const mesh::Fab& fab, const analysis::CompressConfig& config) {
  const std::span<const double> data = fab.flat();
  const auto levels = (1u << config.residual_bits) - 1u;
  const auto block = static_cast<std::size_t>(config.block);
  const int bits = config.residual_bits;
  const std::size_t header = 4 * sizeof(double);
  const auto payload_bytes = [&](std::size_t n) {
    return (n * static_cast<std::size_t>(bits) + 7) / 8;
  };
  const std::size_t nblocks = (data.size() + block - 1) / block;
  const std::size_t full_bytes = header + payload_bytes(block);
  const std::size_t tail_n = data.size() - (nblocks - 1) * block;
  std::vector<std::uint8_t> payload(
      (nblocks - 1) * full_bytes + header + payload_bytes(tail_n), 0);
  std::vector<std::uint32_t> q(block);
  for (std::size_t bi = 0; bi < nblocks; ++bi) {
    const std::size_t n = bi + 1 == nblocks ? tail_n : block;
    const double* v = data.data() + bi * block;
    std::uint8_t* dst = payload.data() + bi * full_bytes;
    double a, b;
    seed_linear_fit(v, n, a, b);
    double rmin = 0.0, rmax = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = v[i] - (a + b * static_cast<double>(i));
      rmin = i == 0 ? r : std::min(rmin, r);
      rmax = i == 0 ? r : std::max(rmax, r);
    }
    const double step = rmax > rmin ? (rmax - rmin) / levels : 0.0;
    std::memcpy(dst + 0 * sizeof(double), &a, sizeof(double));
    std::memcpy(dst + 1 * sizeof(double), &b, sizeof(double));
    std::memcpy(dst + 2 * sizeof(double), &rmin, sizeof(double));
    std::memcpy(dst + 3 * sizeof(double), &step, sizeof(double));
    for (std::size_t i = 0; i < n; ++i) {
      if (step > 0.0) {
        const double r = v[i] - (a + b * static_cast<double>(i));
        // xl-lint: allow(float-cast): lround of a value in [0, levels].
        q[i] = static_cast<std::uint32_t>(std::lround((r - rmin) / step));
        if (q[i] > levels) q[i] = levels;
      } else {
        q[i] = 0;
      }
    }
    std::uint8_t* packed = dst + header;
    for (std::size_t i = 0; i < n; ++i) {
      for (int bit = 0; bit < bits; ++bit) {
        if ((q[i] >> bit) & 1u) {
          const std::size_t bitpos =
              i * static_cast<std::size_t>(bits) + static_cast<std::size_t>(bit);
          packed[bitpos >> 3] |=
              static_cast<std::uint8_t>(1u << (bitpos & 7));
        }
      }
    }
  }
  return payload;
}

void seed_face_flux(const mesh::Fab& u, const mesh::Box& faces, int dim,
                    double vel, double d_over_dx, mesh::Fab& flux) {
  for (mesh::BoxIterator it(faces); it.ok(); ++it) {
    mesh::IntVect lo = *it;
    lo[dim] -= 1;
    const double ul = u(lo, 0);
    const double ur = u(*it, 0);
    const double advective = vel * (vel >= 0.0 ? ul : ur);
    const double diffusive = -d_over_dx * (ur - ul);
    flux(*it, 0) = advective + diffusive;
  }
}

// --- report plumbing ---------------------------------------------------------

struct SpeedupRow {
  std::string name;
  std::size_t cells = 0;
  double seed_s = 0.0;
  double fast_s = 0.0;
  bool identical = false;
  double speedup() const { return fast_s > 0.0 ? seed_s / fast_s : 0.0; }
  double fast_cells_per_s() const {
    return fast_s > 0.0 ? static_cast<double>(cells) / fast_s : 0.0;
  }
};

struct Kernel {
  std::string name;
  /// Runs the kernel and returns a digest of its output (summed bytes,
  /// triangle counts, ...) so we can assert thread-count invariance.
  std::function<double()> run;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool check = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: bench_kernel_scaling [--quick] [--check] [--json FILE]\n";
      return 2;
    }
  }
  g_repeats = quick ? kQuickRepeats : kRepeats;
  const int n = quick ? kQuickN : kN;
  const mesh::Fab field = sample_field(n);
  const mesh::Box cells(field.box().lo(), field.box().hi() - 1);
  analysis::CompressConfig ccfg;

  // ---- Section 1: seed per-cell path vs flat-row path, single thread ----
  ThreadPool::set_global_workers(0);
  std::vector<SpeedupRow> speedups;

  {
    SpeedupRow r;
    r.name = "block entropy";
    r.cells = static_cast<std::size_t>(field.box().num_cells());
    const double seed_out = seed_block_entropy(field, field.box());
    const double fast_out = analysis::block_entropy(field, field.box());
    r.identical = seed_out == fast_out;
    r.seed_s = min_seconds([&] { seed_block_entropy(field, field.box()); });
    r.fast_s = min_seconds([&] { analysis::block_entropy(field, field.box()); });
    speedups.push_back(r);
  }
  {
    SpeedupRow r;
    r.name = "downsample (average)";
    r.cells = static_cast<std::size_t>(field.box().num_cells());
    const mesh::Fab seed_out = seed_downsample_average(field, 2);
    const mesh::Fab fast_out =
        analysis::downsample(field, 2, analysis::DownsampleMethod::Average);
    const std::span<const double> a = seed_out.flat(), b = fast_out.flat();
    r.identical = a.size() == b.size() &&
                  std::memcmp(a.data(), b.data(), a.size_bytes()) == 0;
    r.seed_s = min_seconds([&] { seed_downsample_average(field, 2); });
    r.fast_s = min_seconds([&] {
      analysis::downsample(field, 2, analysis::DownsampleMethod::Average);
    });
    speedups.push_back(r);
  }
  {
    SpeedupRow r;
    r.name = "compress (encode)";
    r.cells = static_cast<std::size_t>(field.box().num_cells());
    const std::vector<std::uint8_t> seed_out = seed_compress_payload(field, ccfg);
    const analysis::CompressedField fast_out = analysis::compress(field, ccfg);
    r.identical = seed_out.size() == fast_out.payload.size() &&
                  std::memcmp(seed_out.data(), fast_out.payload.data(),
                              seed_out.size()) == 0;
    r.seed_s = min_seconds([&] { seed_compress_payload(field, ccfg); });
    r.fast_s = min_seconds([&] { analysis::compress(field, ccfg); });
    speedups.push_back(r);
  }
  {
    SpeedupRow r;
    r.name = "face flux (dim 0)";
    const amr::AdvectionDiffusionConfig pcfg;
    const amr::AdvectionDiffusion physics(pcfg);
    const double dx = 1.0 / n;
    // Faces whose left neighbour still lies inside the field.
    const mesh::Box faces(field.box().lo() + mesh::IntVect{1, 0, 0},
                          field.box().hi());
    r.cells = static_cast<std::size_t>(faces.num_cells());
    mesh::Fab seed_out(faces, 1), fast_out(faces, 1);
    seed_face_flux(field, faces, 0, pcfg.velocity[0], pcfg.diffusivity / dx,
                   seed_out);
    physics.face_flux(field, faces, 0, dx, fast_out);
    const std::span<const double> a = seed_out.flat(), b = fast_out.flat();
    r.identical = std::memcmp(a.data(), b.data(), a.size_bytes()) == 0;
    r.seed_s = min_seconds([&] {
      seed_face_flux(field, faces, 0, pcfg.velocity[0], pcfg.diffusivity / dx,
                     seed_out);
    });
    r.fast_s = min_seconds([&] { physics.face_flux(field, faces, 0, dx, fast_out); });
    speedups.push_back(r);
  }

  std::cout << "row/SIMD path vs seed per-cell path (single thread, "
            << (simd::active() ? "XLAYER_SIMD active" : "scalar pack lanes")
            << "):\n";
  Table st({"kernel", "seed (ms)", "rows (ms)", "speedup", "rows Mcells/s",
            "bit-identical"});
  bool all_identical = true;
  int fast_enough = 0;
  for (const SpeedupRow& r : speedups) {
    all_identical = all_identical && r.identical;
    if (r.speedup() >= kMinSpeedup) ++fast_enough;
    st.row()
        .cell(r.name)
        .cell(r.seed_s * 1e3, 2)
        .cell(r.fast_s * 1e3, 2)
        .cell(r.speedup(), 2)
        .cell(r.fast_cells_per_s() / 1e6, 1)
        .cell(r.identical ? "yes" : "NO");
  }
  std::cout << st.to_string();
  if (!all_identical) {
    std::cerr << "FAIL: row-path kernel output differs from the seed "
                 "per-cell reference\n";
    return 1;
  }

  // ---- Section 2: thread scaling, bit-identity across worker counts ----
  const std::vector<Kernel> kernels = {
      {"marching cubes",
       [&] {
         return static_cast<double>(
             viz::extract_isosurface(field, cells, 0.0).triangle_count());
       }},
      {"downsample (average)",
       [&] {
         return checksum(
             analysis::downsample(field, 2, analysis::DownsampleMethod::Average).flat());
       }},
      {"block entropy", [&] { return analysis::block_entropy(field, field.box()); }},
      {"compress + decompress",
       [&] {
         return checksum(analysis::decompress(analysis::compress(field, ccfg)).flat());
       }},
  };

  const std::vector<std::size_t> thread_counts = {0, 2, 4};

  Table t({"kernel", "serial (ms)", "2 threads (ms)", "4 threads (ms)",
           "speedup @2", "speedup @4"});
  bool mismatch = false;
  double best_speedup4 = 0.0;
  std::vector<std::vector<double>> thread_seconds;
  for (const Kernel& k : kernels) {
    std::vector<double> seconds;
    std::vector<double> digests;
    for (std::size_t workers : thread_counts) {
      ThreadPool::set_global_workers(workers);
      k.run();  // warm up (page in, populate caches) before timing
      seconds.push_back(min_seconds([&] { k.run(); }));
      digests.push_back(k.run());
    }
    ThreadPool::set_global_workers(0);
    for (double d : digests) {
      if (d != digests.front()) mismatch = true;
    }
    const double s2 = seconds[0] / seconds[1];
    const double s4 = seconds[0] / seconds[2];
    best_speedup4 = std::max(best_speedup4, s4);
    t.row()
        .cell(k.name)
        .cell(seconds[0] * 1e3, 2)
        .cell(seconds[1] * 1e3, 2)
        .cell(seconds[2] * 1e3, 2)
        .cell(s2, 2)
        .cell(s4, 2);
    thread_seconds.push_back(seconds);
  }
  std::cout << "\n" << t.to_string();
  if (mismatch) {
    std::cerr << "FAIL: kernel output changed with thread count\n";
    return 1;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "\noutputs bit-identical across thread counts: yes\n"
            << "host hardware concurrency: " << hw << "\n"
            << "best 4-thread speedup: " << best_speedup4 << "x\n"
            << "model exponent check: KernelCosts::thread_efficiency = 0.9 "
               "predicts 4^0.9 = "
            << std::pow(4.0, 0.9) << "x on a dedicated 4-core node\n";
  if (hw < 4) {
    std::cout << "note: fewer than 4 hardware threads available — measured "
                 "speedups reflect oversubscription, not the kernels' "
                 "scaling; rerun on a multi-core host to calibrate "
                 "thread_efficiency\n";
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"quick\": " << (quick ? "true" : "false")
        << ",\n  \"n\": " << n
        << ",\n  \"simd_active\": " << (simd::active() ? "true" : "false")
        << ",\n  \"row_speedup\": [\n";
    for (std::size_t i = 0; i < speedups.size(); ++i) {
      const SpeedupRow& r = speedups[i];
      out << "    {\"kernel\": \"" << r.name << "\", \"cells\": " << r.cells
          << ", \"seed_ms\": " << r.seed_s * 1e3
          << ", \"rows_ms\": " << r.fast_s * 1e3
          << ", \"speedup\": " << r.speedup()
          << ", \"rows_cells_per_s\": " << r.fast_cells_per_s()
          << ", \"bit_identical\": " << (r.identical ? "true" : "false")
          << "}" << (i + 1 < speedups.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"thread_scaling\": [\n";
    for (std::size_t i = 0; i < kernels.size(); ++i) {
      out << "    {\"kernel\": \"" << kernels[i].name
          << "\", \"serial_ms\": " << thread_seconds[i][0] * 1e3
          << ", \"t2_ms\": " << thread_seconds[i][1] * 1e3
          << ", \"t4_ms\": " << thread_seconds[i][2] * 1e3 << "}"
          << (i + 1 < kernels.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }

  if (check) {
    if (fast_enough < kMinKernelsFast) {
      std::cerr << "check FAILED: only " << fast_enough << " of "
                << speedups.size() << " kernels reached the " << kMinSpeedup
                << "x row-path speedup (need >= " << kMinKernelsFast << ")\n";
      return 1;
    }
    std::printf("check: OK (%d/%zu kernels >= %.1fx over the seed per-cell "
                "path, outputs bit-identical)\n",
                fast_enough, speedups.size(), kMinSpeedup);
  }
  return 0;
}
