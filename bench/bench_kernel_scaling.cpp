// Thread-scaling benchmark: run the real analysis kernels serially and on
// the shared xl::ThreadPool at 2 and 4 workers, and report the measured
// speedups. This grounds cluster::KernelCosts::thread_efficiency (the DES
// divides analysis kernel times by T^thread_efficiency when `threads` is
// set) the same way bench_calibration_kernels grounds the flops/cell
// constants. Outputs are bit-identical across thread counts by construction,
// which the harness asserts on every run.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "analysis/compress.hpp"
#include "analysis/downsample.hpp"
#include "analysis/entropy.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "viz/marching_cubes.hpp"

using namespace xl;

namespace {

constexpr int kN = 128;       // field edge: large enough for threading to win
constexpr int kRepeats = 5;   // keep the min — least-noise estimate

// --quick (CI smoke): smaller field, fewer repeats. Timings get noisier but
// the bit-identity assertion is just as strict.
constexpr int kQuickN = 64;
constexpr int kQuickRepeats = 2;
int g_repeats = kRepeats;

mesh::Fab sample_field(int n) {
  mesh::Fab fab(mesh::Box::domain({n, n, n}), 1);
  const double c = n / 2.0;
  for (mesh::BoxIterator it(fab.box()); it.ok(); ++it) {
    const double dx = (*it)[0] + 0.5 - c, dy = (*it)[1] + 0.5 - c,
                 dz = (*it)[2] + 0.5 - c;
    fab(*it) = std::sqrt(dx * dx + dy * dy + dz * dz) - n / 4.0;
  }
  return fab;
}

double min_seconds(const std::function<void()>& body) {
  double best = 0.0;
  for (int r = 0; r < g_repeats; ++r) {
    // xl-lint: allow(wallclock): this bench MEASURES real kernel wall time; the
    // readings are report-only output and never feed a simulated timeline.
    const auto t0 = std::chrono::steady_clock::now();
    body();
    // xl-lint: allow(wallclock): see above — measurement-only.
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

struct Kernel {
  std::string name;
  /// Runs the kernel and returns a digest of its output (summed bytes,
  /// triangle counts, ...) so we can assert thread-count invariance.
  std::function<double()> run;
};

double checksum(std::span<const double> data) {
  double sum = 0.0;
  for (double v : data) sum += v;
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      quick = true;
    } else {
      std::cerr << "usage: bench_kernel_scaling [--quick]\n";
      return 2;
    }
  }
  g_repeats = quick ? kQuickRepeats : kRepeats;
  const mesh::Fab field = sample_field(quick ? kQuickN : kN);
  const mesh::Box cells(field.box().lo(), field.box().hi() - 1);
  analysis::CompressConfig ccfg;

  const std::vector<Kernel> kernels = {
      {"marching cubes",
       [&] {
         return static_cast<double>(
             viz::extract_isosurface(field, cells, 0.0).triangle_count());
       }},
      {"downsample (average)",
       [&] {
         return checksum(
             analysis::downsample(field, 2, analysis::DownsampleMethod::Average).flat());
       }},
      {"block entropy", [&] { return analysis::block_entropy(field, field.box()); }},
      {"compress + decompress",
       [&] {
         return checksum(analysis::decompress(analysis::compress(field, ccfg)).flat());
       }},
  };

  const std::vector<std::size_t> thread_counts = {0, 2, 4};

  Table t({"kernel", "serial (ms)", "2 threads (ms)", "4 threads (ms)",
           "speedup @2", "speedup @4"});
  bool mismatch = false;
  double best_speedup4 = 0.0;
  for (const Kernel& k : kernels) {
    std::vector<double> seconds;
    std::vector<double> digests;
    for (std::size_t workers : thread_counts) {
      ThreadPool::set_global_workers(workers);
      k.run();  // warm up (page in, populate caches) before timing
      seconds.push_back(min_seconds([&] { k.run(); }));
      digests.push_back(k.run());
    }
    ThreadPool::set_global_workers(0);
    for (double d : digests) {
      if (d != digests.front()) mismatch = true;
    }
    const double s2 = seconds[0] / seconds[1];
    const double s4 = seconds[0] / seconds[2];
    best_speedup4 = std::max(best_speedup4, s4);
    t.row()
        .cell(k.name)
        .cell(seconds[0] * 1e3, 2)
        .cell(seconds[1] * 1e3, 2)
        .cell(seconds[2] * 1e3, 2)
        .cell(s2, 2)
        .cell(s4, 2);
  }
  std::cout << t.to_string();
  if (mismatch) {
    std::cerr << "FAIL: kernel output changed with thread count\n";
    return 1;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "\noutputs bit-identical across thread counts: yes\n"
            << "host hardware concurrency: " << hw << "\n"
            << "best 4-thread speedup: " << best_speedup4 << "x\n"
            << "model exponent check: KernelCosts::thread_efficiency = 0.9 "
               "predicts 4^0.9 = "
            << std::pow(4.0, 0.9) << "x on a dedicated 4-core node\n";
  if (hw < 4) {
    std::cout << "note: fewer than 4 hardware threads available — measured "
                 "speedups reflect oversubscription, not the kernels' "
                 "scaling; rerun on a multi-core host to calibrate "
                 "thread_efficiency\n";
  }
  return 0;
}
