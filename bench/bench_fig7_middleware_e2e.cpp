// Fig. 7 reproduction: cumulative end-to-end execution time of the AMR
// Advection-Diffusion + visualization workflow under static in-situ, static
// in-transit, and adaptive middleware placement, at 2K/4K/8K/16K simulation
// cores on the Titan model (16:1 staging ratio).
//
// Paper reference values: adaptive cuts end-to-end overhead by
// 50.00/50.31/50.50/56.30% vs static in-situ and 75.42/38.78/21.29/48.22%
// vs static in-transit; adaptive overhead stays below 6% of simulation time.
#include <iostream>

#include "bench_util.hpp"

using namespace xl;
using namespace xl::workflow;
using xl::bench::RunCache;

namespace {

const Mode kModes[] = {Mode::StaticInSitu, Mode::StaticInTransit,
                       Mode::AdaptiveMiddleware};

std::string key_of(int scale, Mode mode) {
  return "fig7/" + std::string(titan_scales()[static_cast<std::size_t>(scale)].label) +
         "/" + mode_name(mode);
}

void bench_run(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  const Mode mode = kModes[state.range(1)];
  state.SetLabel(key_of(scale, mode));
  xl::bench::run_workflow_benchmark(state, key_of(scale, mode), [=] {
    return titan_middleware_experiment(scale, mode);
  });
}

void print_figure() {
  std::cout << "\n=== Figure 7: cumulative end-to-end execution time (seconds) ===\n";
  Table t({"cores", "placement", "sim time", "overhead", "end-to-end",
           "ovh % of sim", "in-situ", "in-transit", "transfers"});
  std::vector<double> adaptive_ovh(4), insitu_ovh(4), intransit_ovh(4);
  for (int scale = 0; scale < 4; ++scale) {
    for (Mode mode : kModes) {
      const xl::bench::CachedRun& run =
          RunCache::instance().get_run(key_of(scale, mode), [=] {
            return titan_middleware_experiment(scale, mode);
          });
      const WorkflowResult& r = run.result;
      // Placement counts come from the observer event stream: one StepEnd
      // per step carries the final placement.
      int insitu = 0, intransit = 0;
      for (const WorkflowEvent* e :
           xl::bench::events_of_kind(run.events, EventKind::StepEnd)) {
        if (e->skipped) continue;
        (e->placement == runtime::Placement::InSitu ? insitu : intransit)++;
      }
      t.row()
          .cell(titan_scales()[static_cast<std::size_t>(scale)].label)
          .cell(mode_name(mode))
          .cell(r.pure_sim_seconds, 2)
          .cell(r.overhead_seconds, 2)
          .cell(r.end_to_end_seconds, 2)
          .cell(format_percent(r.overhead_seconds / r.pure_sim_seconds))
          .cell(insitu)
          .cell(intransit)
          .cell(run.events.count(EventKind::Transfer));
      const auto s = static_cast<std::size_t>(scale);
      if (mode == Mode::StaticInSitu) insitu_ovh[s] = r.overhead_seconds;
      if (mode == Mode::StaticInTransit) intransit_ovh[s] = r.overhead_seconds;
      if (mode == Mode::AdaptiveMiddleware) adaptive_ovh[s] = r.overhead_seconds;
    }
  }
  std::cout << t.to_string();

  Table red({"cores", "overhead cut vs in-situ", "paper", "overhead cut vs in-transit",
             "paper"});
  const char* paper_is[] = {"50.00%", "50.31%", "50.50%", "56.30%"};
  const char* paper_it[] = {"75.42%", "38.78%", "21.29%", "48.22%"};
  for (std::size_t s = 0; s < 4; ++s) {
    red.row()
        .cell(titan_scales()[s].label)
        .cell(format_percent(1.0 - adaptive_ovh[s] / insitu_ovh[s]))
        .cell(paper_is[s])
        .cell(format_percent(1.0 - adaptive_ovh[s] / intransit_ovh[s]))
        .cell(paper_it[s]);
  }
  std::cout << "\n" << red.to_string();
}

}  // namespace

BENCHMARK(bench_run)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_figure();
  return 0;
}
