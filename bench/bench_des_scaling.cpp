// DES scaling benchmark: the regression gate for the ladder event queue.
//
// Drives an identical discrete-event workload — the classic closed "hold
// model": a population of virtual ranks, each firing and scheduling its next
// event with a deterministic hash-spread timestep — through two engines at
// machine scales from 2K to 1M virtual cores:
//
//   seed:    the pre-refactor engine, replicated verbatim below — a binary
//            heap `priority_queue` of heap-allocated `std::function` events.
//   ladder:  cluster::EventQueue — the ladder queue over flat arena-backed
//            EventRefs with small-buffer-optimized handler slots.
//
// Each rank accumulates its event/byte counters inside the event closure (as
// a real rank accumulates in local state) and folds them into its flat
// cluster::RankRecord once, when its chain ends — so the measured hot path
// is the ENGINE (schedule + dispatch), which is what the speedup gate is
// about, while the flat rank table is still populated and cross-checked.
//
// Each event's closure carries the same state the real transport layer's
// retry continuation does (~72 bytes), which overflows libstdc++'s
// std::function inline buffer — exactly the per-event heap allocation the
// refactor removes. Both engines compute an order-sensitive FNV checksum
// over the rank firing sequence; the bench aborts if the engines disagree,
// so every reported speedup comes from bit-identically ordered work.
//
// Engine phases interleave (ladder, seed, ladder, seed, ...) and each
// engine's best repetition is reported: the bench often shares a machine,
// and best-of-N with interleaving cancels slow co-tenant windows instead of
// letting them land on one engine's single timing.
//
// Reported per scale: events/sec for both engines, speedup, heap
// allocations per event at steady state, and peak process RSS.
//
// --quick   2K/16K cores only, fewer events (CI smoke job)
// --json F  write the report as JSON to file F
// --check   exit non-zero unless the ladder meets the compiled-in
//           thresholds (speedup and allocations/event)
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <queue>
#include <string>
#include <vector>

#include <sys/resource.h>

#include "cluster/event_queue.hpp"
#include "cluster/machine.hpp"

namespace {

// ---------------------------------------------------------------------------
// Global allocation counters. Counting only — every path still defers to the
// default operator new/delete, so behavior is unchanged.
// ---------------------------------------------------------------------------
std::atomic<std::uint64_t> g_alloc_count{0};

}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace xl;

// CI thresholds. Quick mode runs small scales where the binary heap is still
// cache-resident, so the gate is looser than the 1M-core acceptance bar
// (>= 10x, checked by the full run and recorded in EXPERIMENTS.md).
constexpr double kQuickMinSpeedup = 3.0;
constexpr double kFullMinSpeedup = 10.0;  // at the largest (1M-core) scale
constexpr double kMaxAllocsPerEvent = 0.1;

// --- the seed engine, replicated verbatim ----------------------------------
// This is the pre-refactor cluster::EventQueue (binary-heap priority_queue of
// std::function closures), kept here as the "before" baseline the speedup is
// measured against.
class SeedEventQueue {
 public:
  void schedule_at(double t, std::function<void()> fn) {
    heap_.push(Event{t, seq_++, std::move(fn)});
  }

  double now() const noexcept { return now_; }
  bool empty() const noexcept { return heap_.empty(); }

  bool run_one() {
    if (heap_.empty()) return false;
    // priority_queue::top is const; the seed copied the event (and its
    // closure) out before pop — part of the cost being measured.
    Event ev = heap_.top();
    heap_.pop();
    now_ = ev.time;
    ev.fn();
    return true;
  }

  void run_until_empty() {
    while (run_one()) {
    }
  }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
};

// --- deterministic workload -------------------------------------------------

/// Integer hash (splitmix64 finalizer): the sanctioned stand-in for
/// randomness — identical on every host, no PRNG state.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Per-event timestep in [0.5, 1.5) simulated units, hash-spread so the
/// pending set fills ladder buckets instead of degenerating to one timestamp.
double hashed_dt(std::uint64_t rank, std::uint64_t round) {
  const std::uint64_t h = mix(rank * 0x9e3779b97f4a7c15ull + round);
  return 0.5 + static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

struct WorkloadState {
  cluster::RankTable ranks;
  std::uint64_t fired = 0;
  std::uint64_t checksum = 0;  ///< FNV over the rank firing order.
};

/// One rank's event: fires, accumulates the rank's counters in the closure,
/// and schedules the rank's next event; the accumulated counters fold into
/// the flat cluster::RankRecord when the chain ends. The payload field pads
/// the closure to the size of the transport layer's retry continuation
/// (~72 bytes), which is what forces std::function onto the heap in the
/// seed engine.
template <typename Queue>
struct RankEvent {
  Queue* queue;
  WorkloadState* state;
  std::uint64_t rank;
  std::uint64_t round;
  std::uint64_t rounds_left;
  std::uint64_t bytes;
  std::uint64_t events_acc;
  std::uint64_t bytes_acc;
  std::uint64_t payload_a;  // padding mirroring the fabric closure's callbacks

  void operator()() const {
    ++state->fired;
    state->checksum = (state->checksum ^ rank) * 1099511628211ull;
    if (rounds_left == 0) {
      // Chain end: one flat-table fold of everything this rank accumulated.
      cluster::RankRecord& rec = state->ranks[rank];
      rec.busy_until = queue->now();
      rec.events += events_acc + 1;
      rec.bytes_sent += bytes_acc + bytes;
      return;
    }
    RankEvent next = *this;
    next.round = round + 1;
    next.rounds_left = rounds_left - 1;
    next.events_acc = events_acc + 1;
    next.bytes_acc = bytes_acc + bytes;
    next.bytes = mix(bytes) & 0xffff;
    queue->schedule_at(queue->now() + hashed_dt(rank, round + 1), next);
  }
};

struct PhaseReport {
  double seconds = 0.0;
  double events_per_sec = 0.0;
  double allocs_per_event = 0.0;
  std::uint64_t events = 0;
  std::uint64_t checksum = 0;
  long peak_rss_kb = 0;
};

long peak_rss_kb() {
  struct rusage usage;
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;
}

template <typename Queue>
PhaseReport run_phase(std::size_t nranks, std::uint64_t rounds_per_rank) {
  Queue queue;
  WorkloadState state;
  state.ranks.reset(nranks);

  // Seed the population: one in-flight event per virtual rank.
  for (std::size_t rank = 0; rank < nranks; ++rank) {
    RankEvent<Queue> ev{&queue,
                        &state,
                        rank,
                        /*round=*/0,
                        /*rounds_left=*/rounds_per_rank - 1,
                        /*bytes=*/mix(rank) & 0xffff,
                        /*events_acc=*/0,
                        /*bytes_acc=*/0,
                        /*payload_a=*/rank * 2654435761ull};
    queue.schedule_at(hashed_dt(rank, 0), ev);
  }

  const std::uint64_t allocs0 = g_alloc_count.load(std::memory_order_relaxed);
  // xl-lint: allow(wallclock): this bench MEASURES real engine throughput;
  // nothing in the simulated timeline depends on it.
  const auto t0 = std::chrono::steady_clock::now();
  queue.run_until_empty();
  // xl-lint: allow(wallclock): see above — measurement-only.
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t allocs1 = g_alloc_count.load(std::memory_order_relaxed);

  PhaseReport report;
  report.seconds = std::chrono::duration<double>(t1 - t0).count();
  report.events = state.fired;
  report.events_per_sec =
      report.seconds > 0.0 ? static_cast<double>(state.fired) / report.seconds : 0.0;
  report.allocs_per_event =
      static_cast<double>(allocs1 - allocs0) / static_cast<double>(state.fired);
  report.checksum = state.checksum ^ state.ranks.total_events() ^
                    state.ranks.total_bytes_sent();
  report.peak_rss_kb = peak_rss_kb();
  return report;
}

struct ScaleResult {
  std::size_t nranks = 0;
  std::uint64_t events = 0;
  PhaseReport ladder;
  PhaseReport seed;
  double speedup = 0.0;
};

void write_json(const std::string& path, bool quick,
                const std::vector<ScaleResult>& results) {
  std::ofstream os(path);
  os << "{\n"
     << "  \"bench\": \"des_scaling\",\n"
     << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
     << "  \"min_speedup\": " << (quick ? kQuickMinSpeedup : kFullMinSpeedup) << ",\n"
     << "  \"max_allocs_per_event\": " << kMaxAllocsPerEvent << ",\n"
     << "  \"scales\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScaleResult& r = results[i];
    os << "    {\"virtual_cores\": " << r.nranks << ", \"events\": " << r.events
       << ", \"ladder_events_per_sec\": " << r.ladder.events_per_sec
       << ", \"seed_events_per_sec\": " << r.seed.events_per_sec
       << ", \"speedup\": " << r.speedup
       << ", \"ladder_allocs_per_event\": " << r.ladder.allocs_per_event
       << ", \"seed_allocs_per_event\": " << r.seed.allocs_per_event
       << ", \"ladder_peak_rss_kb\": " << r.ladder.peak_rss_kb
       << ", \"seed_peak_rss_kb\": " << r.seed.peak_rss_kb << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool check = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: bench_des_scaling [--quick] [--check] [--json FILE]\n";
      return 2;
    }
  }

  // Virtual-core scales (population = one in-flight event per core) and
  // events per core. The full sweep ends at 1M cores x 10 rounds = 10M+
  // events — the acceptance-scale run; quick mode stays CI-sized.
  struct Scale {
    std::size_t nranks;
    std::uint64_t rounds;
  };
  std::vector<Scale> scales;
  if (quick) {
    scales = {{2048, 64}, {16384, 16}};
  } else {
    scales = {{2048, 512}, {16384, 64}, {131072, 16}, {1048576, 10}};
  }

  std::vector<ScaleResult> results;
  std::printf(
      "=== DES scaling: ladder queue vs seed priority_queue (%s) ===\n"
      "%10s %12s %16s %16s %9s %14s %14s\n",
      quick ? "quick" : "full", "cores", "events", "ladder ev/s", "seed ev/s",
      "speedup", "ladder alloc/ev", "rss MB");
  // Repetitions per engine (interleaved), best timing kept. Quick mode runs
  // once — the CI smoke gate is loose enough to absorb noise.
  const int reps = quick ? 1 : 3;
  for (const Scale& s : scales) {
    ScaleResult r;
    r.nranks = s.nranks;
    for (int rep = 0; rep < reps; ++rep) {
      // Ladder first: peak RSS is process-monotonic, so the lean engine gets
      // the honest reading (rep 0) and the heap-hungry seed runs afterwards.
      PhaseReport ladder = run_phase<cluster::EventQueue>(s.nranks, s.rounds);
      PhaseReport seed = run_phase<SeedEventQueue>(s.nranks, s.rounds);
      if (ladder.checksum != seed.checksum || ladder.events != seed.events) {
        std::cerr << "FAIL: engines disagree at " << s.nranks
                  << " cores (checksum " << ladder.checksum << " vs "
                  << seed.checksum << ", events " << ladder.events << " vs "
                  << seed.events << ")\n";
        return 1;
      }
      if (rep == 0) {
        r.ladder = ladder;
        r.seed = seed;
      } else {
        if (ladder.checksum != r.ladder.checksum) {
          std::cerr << "FAIL: checksum drifted across repetitions at "
                    << s.nranks << " cores\n";
          return 1;
        }
        const long rss = r.ladder.peak_rss_kb;  // rep-0 reading, see above
        if (ladder.events_per_sec > r.ladder.events_per_sec) r.ladder = ladder;
        r.ladder.peak_rss_kb = rss;
        if (seed.events_per_sec > r.seed.events_per_sec) r.seed = seed;
      }
    }
    r.events = r.ladder.events;
    r.speedup = r.seed.events_per_sec > 0.0
                    ? r.ladder.events_per_sec / r.seed.events_per_sec
                    : 0.0;
    std::printf("%10zu %12llu %16.0f %16.0f %8.1fx %14.4f %14ld\n", r.nranks,
                static_cast<unsigned long long>(r.events), r.ladder.events_per_sec,
                r.seed.events_per_sec, r.speedup, r.ladder.allocs_per_event,
                r.ladder.peak_rss_kb / 1024);
    results.push_back(r);
  }
  std::printf("(firing order bit-identical across engines at every scale)\n");

  if (!json_path.empty()) write_json(json_path, quick, results);

  if (check) {
    bool ok = true;
    const double min_speedup = quick ? kQuickMinSpeedup : kFullMinSpeedup;
    // The speedup gate applies at the largest scale, where the binary heap's
    // cache behavior is the bottleneck being fixed; allocs/event everywhere.
    const ScaleResult& top = results.back();
    if (top.speedup < min_speedup) {
      std::cerr << "FAIL: speedup " << top.speedup << "x at " << top.nranks
                << " cores below threshold " << min_speedup << "x\n";
      ok = false;
    }
    for (const ScaleResult& r : results) {
      if (r.ladder.allocs_per_event > kMaxAllocsPerEvent) {
        std::cerr << "FAIL: ladder allocates " << r.ladder.allocs_per_event
                  << " per event at " << r.nranks << " cores (threshold "
                  << kMaxAllocsPerEvent << ")\n";
        ok = false;
      }
    }
    if (!ok) return 1;
    std::printf("check: OK (speedup %.1fx >= %.0fx at %zu cores, allocs/event <= %.1f)\n",
                top.speedup, min_speedup, top.nranks, kMaxAllocsPerEvent);
  }
  return 0;
}
