// Fault sweep: end-to-end resilience of the adaptive workflow under the
// PR's deterministic fault injection. Two sweeps on the Titan 2K-core
// Advection-Diffusion setup (adaptive middleware placement):
//
//  (a) transfer-fault rate 0..20%: every staged buffer runs the retry/backoff
//      ladder; exhausted transfers fall back in-situ. Reported: end-to-end
//      slowdown vs the fault-free run, retries, failures, and the fraction of
//      analyses that were degraded to the simulation partition.
//  (b) staging-server crash at step 10 (half the partition, then the whole
//      partition, for varying outage lengths): recovery must re-admit
//      in-transit work and no step may lose its analysis.
//
// No paper figure corresponds to this bench: the paper assumes an always-up
// staging area. This is the robustness envelope around its §5 experiments.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <iterator>

#include "bench_util.hpp"

using namespace xl;
using namespace xl::workflow;
using xl::bench::RunCache;

namespace {

const double kDropRates[] = {0.0, 0.02, 0.05, 0.10, 0.20};

/// Replication factor for every run of the sweep (the --replication N flag,
/// stripped from argv before google-benchmark sees it). 1 reproduces the
/// unreplicated PR 2 sweeps; k > 1 re-runs them against the durable space.
int g_replication = 1;

struct CrashCase {
  const char* label;
  int servers;   // 0 = no crash
  int duration;  // steps; 0 = permanent
};

const CrashCase kCrashCases[] = {
    {"none", 0, 0},          {"half/5-steps", 64, 5},  {"half/permanent", 64, 0},
    {"full/5-steps", 128, 5}, {"full/permanent", 128, 0},
};

WorkflowConfig drop_config(std::size_t rate_index) {
  WorkflowConfig c = titan_middleware_experiment(0, Mode::AdaptiveMiddleware);
  c.faults.transfer_drop_rate = kDropRates[rate_index];
  c.replication = g_replication;
  return c;
}

WorkflowConfig crash_config(std::size_t case_index) {
  WorkflowConfig c = titan_middleware_experiment(0, Mode::AdaptiveMiddleware);
  const CrashCase& cc = kCrashCases[case_index];
  c.replication = g_replication;
  if (cc.servers > 0) {
    runtime::FaultSpec spec;
    spec.kind = runtime::FaultKind::ServerCrash;
    spec.step = 10;
    spec.servers = cc.servers;
    spec.duration_steps = cc.duration;
    c.faults.events.push_back(spec);
  }
  return c;
}

std::string drop_key(std::size_t i) {
  return "fault/drop/" + std::to_string(kDropRates[i]);
}
std::string crash_key(std::size_t i) {
  return std::string("fault/crash/") + kCrashCases[i].label;
}

void bench_drop(benchmark::State& state) {
  const auto i = static_cast<std::size_t>(state.range(0));
  state.SetLabel(drop_key(i));
  xl::bench::run_workflow_benchmark(state, drop_key(i), [=] { return drop_config(i); });
}

void bench_crash(benchmark::State& state) {
  const auto i = static_cast<std::size_t>(state.range(0));
  state.SetLabel(crash_key(i));
  xl::bench::run_workflow_benchmark(state, crash_key(i), [=] { return crash_config(i); });
}

/// Fraction of scheduled analyses this run completed on the simulation
/// partition only because of a fault (transfer exhausted or staging down).
double degraded_fraction(const WorkflowResult& r) {
  const auto analyses = static_cast<double>(r.insitu_count + r.intransit_count);
  return analyses > 0.0 ? static_cast<double>(r.degraded_insitu_count) / analyses : 0.0;
}

void print_figure() {
  std::cout << "\n=== Fault sweep (a): transfer-fault rate vs end-to-end cost"
            << " (replication " << g_replication << ") ===\n";
  const double base_drop =
      RunCache::instance().get(drop_key(0), [] { return drop_config(0); }).end_to_end_seconds;
  Table td({"drop rate", "end-to-end", "slowdown", "retries", "failures",
            "degraded analyses", "in-transit"});
  for (std::size_t i = 0; i < std::size(kDropRates); ++i) {
    const WorkflowResult& r =
        RunCache::instance().get(drop_key(i), [=] { return drop_config(i); });
    td.row()
        .cell(format_percent(kDropRates[i]))
        .cell(format_seconds(r.end_to_end_seconds))
        .cell(r.end_to_end_seconds / base_drop, 3)
        .cell(r.transfer_retries)
        .cell(r.transfer_failures)
        .cell(format_percent(degraded_fraction(r)))
        .cell(r.intransit_count);
  }
  std::cout << td.to_string();

  std::cout << "\n=== Fault sweep (b): staging crash at step 10"
            << " (replication " << g_replication << ") ===\n";
  const double base_crash =
      RunCache::instance().get(crash_key(0), [] { return crash_config(0); }).end_to_end_seconds;
  Table tc({"crash", "end-to-end", "slowdown", "recoveries", "dropped bytes",
            "degraded analyses", "completed steps"});
  for (std::size_t i = 0; i < std::size(kCrashCases); ++i) {
    const WorkflowResult& r =
        RunCache::instance().get(crash_key(i), [=] { return crash_config(i); });
    tc.row()
        .cell(kCrashCases[i].label)
        .cell(format_seconds(r.end_to_end_seconds))
        .cell(r.end_to_end_seconds / base_crash, 3)
        .cell(r.recoveries)
        .cell(format_bytes(static_cast<double>(r.dropped_bytes)))
        .cell(format_percent(degraded_fraction(r)))
        .cell(static_cast<int>(r.steps.size()));
  }
  std::cout << tc.to_string();
}

}  // namespace

BENCHMARK(bench_drop)
    ->DenseRange(0, static_cast<int>(std::size(kDropRates)) - 1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(bench_crash)
    ->DenseRange(0, static_cast<int>(std::size(kCrashCases)) - 1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

int main(int argc, char** argv) {
  // Strip --replication N before google-benchmark parses (and rejects) it.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--replication") == 0 && i + 1 < argc) {
      g_replication = std::atoi(argv[++i]);
      if (g_replication < 1) {
        std::cerr << "usage: bench_fault_sweep [--replication N>=1] [benchmark flags]\n";
        return 2;
      }
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_figure();
  return 0;
}
