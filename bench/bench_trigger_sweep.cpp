// Trigger sweep: the regression gate for the percentile-sampling trigger
// layer (Monitor + TriggerDetector).
//
// Two geometry schedules drive the coupled workflow (Titan 128+8, global
// cross-layer adaptation, sampling_period = 1):
//
//  * bursty — a slow front plus a sudden blob onset mid-run and a sharp
//    front-decay regime change later: two well-separated "shocks" the
//    trigger must not miss.
//  * quiescent — a frozen front and no blobs: the geometry never changes,
//    so every adaptation decision after the first is wasted work.
//
// The oracle shock schedule is the two INJECTED regime changes of the bursty
// config — the blob onset step and the front-decay onset step — independent
// of the trigger implementation. The harness verifies each against the
// FixedPeriod baseline's own per-step records (relative analyzed-cell change
// above 15% at that step), so the zero-miss gate cannot pass vacuously. The
// blob drift between the two onsets adds genuine tile-granular churn the
// trailing quantile must ride out, which is what makes the miss gate hard.
//
// Gates (--check):
//  * FixedPeriod emits NO trigger events and zero trigger counters (the
//    legacy cadence is untouched).
//  * Percentile and Hybrid miss ZERO oracle shocks on the bursty schedule
//    (false-negative rate 0), including under window sub-sampling.
//  * On the quiescent schedule the trigger makes >= 30% fewer adaptation
//    decisions than the every-step baseline (it is ~97% fewer).
//  * Hybrid never lets more than max_interval steps pass without a fire.
//  * Every trigger case's event CSV is byte-identical across reruns and
//    across the analytic and discrete-event substrates.
//
// --quick   trims the sweep to the gate-carrying cases (CI smoke)
// --json F  write the report as JSON to file F
// --check   exit non-zero unless every invariant above holds
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/machine.hpp"
#include "mesh/layout.hpp"
#include "runtime/trigger.hpp"
#include "workflow/coupled_workflow.hpp"
#include "workflow/execution_substrate.hpp"
#include "workflow/observer.hpp"
#include "workflow/trace_io.hpp"

namespace {

using namespace xl;
using namespace xl::workflow;
using mesh::Box;

constexpr int kSteps = 40;
constexpr double kOracleThreshold = 0.15;  ///< relative change marking a shock.
constexpr double kMaxDecisionRatio = 0.7;  ///< quiescent gate: >= 30% saved.

WorkflowConfig sweep_config(bool bursty) {
  WorkflowConfig c;
  c.machine = cluster::titan();
  c.sim_cores = 128;
  c.staging_cores = 8;
  c.steps = kSteps;
  c.mode = Mode::Global;
  c.geometry.base_domain = Box::domain({128, 64, 64});
  c.geometry.nranks = 128;
  c.hints.factor_phases = {{0, {2, 4}}};
  c.monitor.sampling_period = 1;  // the k = 1 baseline: adapt every step.
  c.monitor.trigger.window = 8;
  if (bursty) {
    // Slow continuous growth, a blob onset at step 12 (sudden new refined
    // regions) and a sharp decay regime change at step 26.
    c.geometry.front_speed = 0.002;
    c.geometry.blob_onset_step = 12;
    c.geometry.num_blobs = 3;
    c.geometry.blob_radius = 0.08;
    c.geometry.front_decay = 0.75;
    c.geometry.front_decay_onset = 26;
  } else {
    // Frozen geometry: the indicator is exactly 0 after the first step.
    c.geometry.front_speed = 0.0;
    c.geometry.num_blobs = 0;
    c.geometry.front_decay = 1.0;
  }
  return c;
}

/// The injected regime changes of the bursty schedule — the oracle the
/// trigger is graded against.
std::vector<int> injected_shocks(const WorkflowConfig& c) {
  return {c.geometry.blob_onset_step, c.geometry.front_decay_onset};
}

/// Non-vacuity check: the injected shock must be VISIBLE in the baseline's
/// per-step records as a relative analyzed-cell change above the oracle
/// threshold, or the zero-miss gate would grade the trigger against a
/// regime change that never materialized.
bool shock_visible(const WorkflowResult& baseline, int step) {
  for (std::size_t i = 1; i < baseline.steps.size(); ++i) {
    if (baseline.steps[i].step != step) continue;
    const double prev =
        std::max(1.0, static_cast<double>(baseline.steps[i - 1].analyzed_cells));
    const double change =
        std::abs(static_cast<double>(baseline.steps[i].analyzed_cells) -
                 static_cast<double>(baseline.steps[i - 1].analyzed_cells)) /
        prev;
    return change > kOracleThreshold;
  }
  return false;
}

std::uint64_t fnv(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char ch : s) h = (h ^ ch) * 1099511628211ull;
  return h;
}

std::string events_csv_of(const WorkflowConfig& config, ExecutionSubstrate& substrate,
                          WorkflowResult* out, std::vector<int>* fired) {
  CoupledWorkflow wf(config);
  EventLog log;
  wf.set_observer(&log);
  const WorkflowResult result = wf.run_on(substrate);
  if (out) *out = result;
  if (fired) {
    for (const WorkflowEvent& e : log.events()) {
      if (e.kind == EventKind::TriggerFired) fired->push_back(e.step);
    }
  }
  std::ostringstream os;
  write_events_csv(os, log);
  return os.str();
}

struct SweepCase {
  const char* schedule;  ///< "bursty" | "quiescent"
  runtime::TriggerPolicy policy;
  double sample_rate;
  bool quick;  ///< included in --quick mode.
};

const SweepCase kCases[] = {
    {"bursty", runtime::TriggerPolicy::FixedPeriod, 1.0, true},
    {"bursty", runtime::TriggerPolicy::Percentile, 1.0, true},
    {"bursty", runtime::TriggerPolicy::Hybrid, 1.0, false},
    {"bursty", runtime::TriggerPolicy::Percentile, 0.7, false},
    {"quiescent", runtime::TriggerPolicy::FixedPeriod, 1.0, false},
    {"quiescent", runtime::TriggerPolicy::Percentile, 1.0, true},
    {"quiescent", runtime::TriggerPolicy::Hybrid, 1.0, true},
};

struct CaseResult {
  std::string label;
  const SweepCase* sc = nullptr;
  int decisions = 0;       ///< adaptation decisions taken (fires; steps for fixed).
  int suppressed = 0;
  int shock_count = 0;     ///< oracle shocks on this schedule.
  int missed_shocks = 0;   ///< oracle shocks with no fire (must be 0).
  int false_fires = 0;     ///< fires at non-shock steps (diagnostic).
  int max_gap = 0;         ///< longest run of consecutive non-fire steps.
  double saved_fraction = 0.0;  ///< decisions saved vs the k = 1 baseline.
  std::uint64_t csv_checksum = 0;
  bool identical_rerun = false;
  bool identical_substrates = false;
  bool ok = false;
};

CaseResult run_case(const SweepCase& sc, const std::vector<int>& shocks) {
  WorkflowConfig config = sweep_config(std::strcmp(sc.schedule, "bursty") == 0);
  config.monitor.trigger.policy = sc.policy;
  config.monitor.trigger.sample_rate = sc.sample_rate;

  CaseResult r;
  r.sc = &sc;
  r.label = std::string("trigger/") + sc.schedule + "/" +
            runtime::trigger_policy_name(sc.policy);
  if (sc.sample_rate < 1.0) r.label += "/subsampled";

  WorkflowResult result;
  std::vector<int> fired;
  AnalyticSubstrate analytic1, analytic2;
  EventQueueSubstrate des;
  const std::string a1 = events_csv_of(config, analytic1, &result, &fired);
  const std::string a2 = events_csv_of(config, analytic2, nullptr, nullptr);
  const std::string d = events_csv_of(config, des, nullptr, nullptr);
  r.csv_checksum = fnv(a1);
  r.identical_rerun = a1 == a2;
  r.identical_substrates = a1 == d;

  const bool fixed = sc.policy == runtime::TriggerPolicy::FixedPeriod;
  r.decisions = fixed ? config.steps : result.triggers_fired;
  r.suppressed = result.steps_suppressed;
  r.saved_fraction =
      1.0 - static_cast<double>(r.decisions) / static_cast<double>(config.steps);
  r.shock_count = static_cast<int>(shocks.size());
  for (int s : shocks) {
    if (!fixed && std::find(fired.begin(), fired.end(), s) == fired.end()) {
      ++r.missed_shocks;
    }
  }
  for (int s : fired) {
    if (std::find(shocks.begin(), shocks.end(), s) == shocks.end()) ++r.false_fires;
  }
  int prev_fire = -1;
  for (int s : fired) {
    r.max_gap = std::max(r.max_gap, s - prev_fire - 1);
    prev_fire = s;
  }
  if (!fixed) r.max_gap = std::max(r.max_gap, config.steps - 1 - prev_fire);

  bool ok = r.identical_rerun && r.identical_substrates;
  if (fixed) {
    // The legacy cadence must not know the trigger layer exists.
    ok = ok && result.triggers_fired == 0 && result.steps_suppressed == 0 &&
         a1.find("trigger-fired") == std::string::npos &&
         a1.find("trigger-suppressed") == std::string::npos;
  } else {
    ok = ok && r.missed_shocks == 0;
    if (std::strcmp(sc.schedule, "quiescent") == 0) {
      ok = ok && r.decisions <=
                     static_cast<int>(kMaxDecisionRatio * config.steps);
    }
    if (sc.policy == runtime::TriggerPolicy::Hybrid) {
      ok = ok && r.max_gap < config.monitor.trigger.max_interval;
    }
  }
  r.ok = ok;
  return r;
}

void write_json(const std::string& path, bool quick,
                const std::vector<CaseResult>& cases) {
  std::ofstream os(path);
  os << "{\n"
     << "  \"bench\": \"trigger_sweep\",\n"
     << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
     << "  \"steps\": " << kSteps << ",\n"
     << "  \"cases\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& r = cases[i];
    os << "    {\"case\": \"" << r.label << "\", \"decisions\": " << r.decisions
       << ", \"suppressed\": " << r.suppressed
       << ", \"saved_fraction\": " << r.saved_fraction
       << ", \"oracle_shocks\": " << r.shock_count
       << ", \"missed_shocks\": " << r.missed_shocks
       << ", \"false_fires\": " << r.false_fires << ", \"max_gap\": " << r.max_gap
       << ", \"csv_checksum\": " << r.csv_checksum
       << ", \"identical_rerun\": " << (r.identical_rerun ? "true" : "false")
       << ", \"identical_substrates\": " << (r.identical_substrates ? "true" : "false")
       << ", \"ok\": " << (r.ok ? "true" : "false") << "}"
       << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool check = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: bench_trigger_sweep [--quick] [--check] [--json FILE]\n";
      return 2;
    }
  }

  // The injected oracle shocks, verified visible in a FixedPeriod baseline
  // (the quiescent schedule injects none — its gate is decision savings).
  const WorkflowConfig bursty_config = sweep_config(true);
  const std::vector<int> shocks = injected_shocks(bursty_config);
  WorkflowResult baseline;
  {
    AnalyticSubstrate substrate;
    events_csv_of(bursty_config, substrate, &baseline, nullptr);
  }
  std::printf("=== Trigger sweep: %d steps, injected shocks at steps %d and %d ===\n",
              kSteps, shocks[0], shocks[1]);
  std::printf("%-38s %9s %9s %7s %7s %7s %7s %6s %5s %5s\n", "case", "decisions",
              "suppress", "saved", "shocks", "missed", "false+", "maxgap", "subst",
              "ok");

  bool ok = true;
  for (int s : shocks) {
    if (!shock_visible(baseline, s)) {
      std::cerr << "FAIL: injected shock at step " << s
                << " is not visible in the baseline records (oracle vacuous)\n";
      ok = false;
    }
  }

  std::vector<CaseResult> cases;
  for (const SweepCase& sc : kCases) {
    if (quick && !sc.quick) continue;
    const bool bursty = std::strcmp(sc.schedule, "bursty") == 0;
    CaseResult r = run_case(sc, bursty ? shocks : std::vector<int>{});
    std::printf("%-38s %9d %9d %6.0f%% %7d %7d %7d %6d %5s %5s\n", r.label.c_str(),
                r.decisions, r.suppressed, 100.0 * r.saved_fraction,
                r.shock_count, r.missed_shocks, r.false_fires, r.max_gap,
                r.identical_substrates ? "yes" : "NO", r.ok ? "yes" : "NO");
    if (!r.ok) {
      std::cerr << "FAIL: " << r.label
                << (r.identical_rerun ? "" : " rerun diverged")
                << (r.identical_substrates ? "" : " substrates diverged")
                << (r.missed_shocks > 0 ? " missed oracle shocks" : "")
                << "\n";
      ok = false;
    }
    cases.push_back(r);
  }
  std::printf("(trigger event CSVs bit-identical across substrates and reruns)\n");

  if (!json_path.empty()) write_json(json_path, quick, cases);

  if (check) {
    if (!ok) return 1;
    std::printf("check: OK (%zu cases; zero missed shocks on bursty, >= 30%% fewer "
                "decisions on quiescent, fixed cadence untouched)\n",
                cases.size());
  }
  return ok ? 0 : 1;
}
