// Fig. 8 reproduction: total in-situ -> in-transit data movement (GB) of
// static in-transit placement vs adaptive placement at the four Titan scales.
//
// Paper reference: adaptive placement reduces the aggregated transfer volume
// by 50.00/48.00/47.90/39.04% at 2K/4K/8K/16K cores.
#include <iostream>

#include "bench_util.hpp"

using namespace xl;
using namespace xl::workflow;
using xl::bench::RunCache;

namespace {

std::string key_of(int scale, Mode mode) {
  return "fig8/" + std::string(titan_scales()[static_cast<std::size_t>(scale)].label) +
         "/" + mode_name(mode);
}

void bench_run(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  const Mode mode = state.range(1) == 0 ? Mode::StaticInTransit : Mode::AdaptiveMiddleware;
  state.SetLabel(key_of(scale, mode));
  xl::bench::run_workflow_benchmark(state, key_of(scale, mode), [=] {
    return titan_middleware_experiment(scale, mode);
  });
}

void print_figure() {
  std::cout << "\n=== Figure 8: aggregated in-situ -> in-transit transfers (GB) ===\n";
  Table t({"cores", "in-transit placement", "adaptive placement", "reduction",
           "paper reduction"});
  const char* paper[] = {"50.00%", "48.00%", "47.90%", "39.04%"};
  for (int scale = 0; scale < 4; ++scale) {
    const WorkflowResult& fixed =
        RunCache::instance().get(key_of(scale, Mode::StaticInTransit), [=] {
          return titan_middleware_experiment(scale, Mode::StaticInTransit);
        });
    const WorkflowResult& adaptive =
        RunCache::instance().get(key_of(scale, Mode::AdaptiveMiddleware), [=] {
          return titan_middleware_experiment(scale, Mode::AdaptiveMiddleware);
        });
    t.row()
        .cell(titan_scales()[static_cast<std::size_t>(scale)].label)
        .cell(static_cast<double>(fixed.bytes_moved) / 1e9, 1)
        .cell(static_cast<double>(adaptive.bytes_moved) / 1e9, 1)
        .cell(format_percent(1.0 - static_cast<double>(adaptive.bytes_moved) /
                                       static_cast<double>(fixed.bytes_moved)))
        .cell(paper[scale]);
  }
  std::cout << t.to_string();
}

}  // namespace

BENCHMARK(bench_run)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_figure();
  return 0;
}
