// Fig. 11 reproduction: total data movement of global (cross-layer)
// adaptation vs local middleware-only adaptation.
//
// Paper reference: movement drops 45.93/17.25/5.76/32.41% — the in-situ data
// reduction dominates even though more steps run in-transit. Our reduction is
// stronger than the paper's (see EXPERIMENTS.md): the paper's factor-X hint
// set yields an effective per-step reduction milder than X^3 on their runs,
// while our application layer reduces every step by at least 2^3. The
// direction — global moves less despite analyzing in-transit as often or
// more — is what this figure checks.
#include <iostream>

#include "bench_util.hpp"

using namespace xl;
using namespace xl::workflow;
using xl::bench::RunCache;

namespace {

std::string key_of(int scale, Mode mode) {
  return "fig11/" + std::string(titan_scales()[static_cast<std::size_t>(scale)].label) +
         "/" + mode_name(mode);
}

void bench_run(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  const Mode mode = state.range(1) == 0 ? Mode::AdaptiveMiddleware : Mode::Global;
  state.SetLabel(key_of(scale, mode));
  xl::bench::run_workflow_benchmark(state, key_of(scale, mode), [=] {
    return titan_global_experiment(scale, mode);
  });
}

void print_figure() {
  std::cout << "\n=== Figure 11: data movement, local vs global adaptation (GB) ===\n";
  Table t({"cores", "local adaptation", "global adaptation", "reduction",
           "paper reduction", "in-transit steps (local/global)"});
  const char* paper[] = {"45.93%", "17.25%", "5.76%", "32.41%"};
  for (int scale = 0; scale < 4; ++scale) {
    const WorkflowResult& local =
        RunCache::instance().get(key_of(scale, Mode::AdaptiveMiddleware), [=] {
          return titan_global_experiment(scale, Mode::AdaptiveMiddleware);
        });
    const WorkflowResult& global =
        RunCache::instance().get(key_of(scale, Mode::Global), [=] {
          return titan_global_experiment(scale, Mode::Global);
        });
    t.row()
        .cell(titan_scales()[static_cast<std::size_t>(scale)].label)
        .cell(static_cast<double>(local.bytes_moved) / 1e9, 1)
        .cell(static_cast<double>(global.bytes_moved) / 1e9, 1)
        .cell(format_percent(1.0 - static_cast<double>(global.bytes_moved) /
                                       static_cast<double>(local.bytes_moved)))
        .cell(paper[scale])
        .cell(std::to_string(local.intransit_count) + "/" +
              std::to_string(global.intransit_count));
  }
  std::cout << t.to_string();
}

}  // namespace

BENCHMARK(bench_run)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_figure();
  return 0;
}
