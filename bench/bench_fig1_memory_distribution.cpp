// Fig. 1 reproduction: distribution of peak memory consumption across ranks
// and time steps for the AMR Polytropic Gas workload (Intrepid model, 4K
// cores). The per-rank peaks come from the memory model applied to the real
// per-step layouts (decompose + Berger-Rigoutsos + Morton balance), which is
// where the paper's erratic, imbalanced profile originates.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "amr/memory_model.hpp"
#include "amr/synthetic.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "workflow/experiment.hpp"

using namespace xl;

namespace {

constexpr int kSteps = 50;

amr::SyntheticAmrEvolution& evolution() {
  static amr::SyntheticAmrEvolution evo(workflow::intrepid_geometry(4096));
  return evo;
}

std::vector<std::size_t> peaks_at(int step) {
  const amr::SyntheticStep geom = evolution().at(step);
  return amr::per_rank_peak_bytes(geom.levels, workflow::intrepid_memory_model());
}

void bench_memory_model(benchmark::State& state) {
  const int step = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto peaks = peaks_at(step);
    benchmark::DoNotOptimize(peaks.data());
  }
}

void print_figure() {
  std::cout << "\n=== Figure 1: peak memory per process, 4K ranks, " << kSteps
            << " steps (MB) ===\n";
  Table t({"step", "min", "p25", "median", "p75", "p95", "max", "max/mean"});
  Histogram overall(0.0, 512.0, 16);
  for (int step = 0; step < kSteps; step += 2) {
    const auto peaks = peaks_at(step);
    SampleSet s;
    RunningStats stats;
    for (std::size_t b : peaks) {
      const double mb = static_cast<double>(b) / (1 << 20);
      s.add(mb);
      stats.add(mb);
      if (step % 10 == 0) overall.add(mb);
    }
    t.row()
        .cell(step)
        .cell(s.min(), 1)
        .cell(s.quantile(0.25), 1)
        .cell(s.median(), 1)
        .cell(s.quantile(0.75), 1)
        .cell(s.quantile(0.95), 1)
        .cell(s.max(), 1)
        .cell(stats.max() / stats.mean(), 2);
  }
  std::cout << t.to_string();
  std::cout << "\nPer-rank peak histogram (MB, pooled over steps 0,10,20,30,40):\n"
            << overall.to_string(48)
            << "\nPaper behaviour checked: memory varies strongly across ranks\n"
               "and grows erratically over time as refinements concentrate on a\n"
               "subset of ranks (peaks of hundreds of MB on 512 MB cores).\n";
}

}  // namespace

BENCHMARK(bench_memory_model)->Arg(0)->Arg(25)->Arg(49)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_figure();
  return 0;
}
