// Chaos sweep: the regression gate for the staging durability layer.
//
// Two harnesses, both deterministic (no PRNG, no wall clock in the verdict):
//
//  (a) object chaos — drives staging::StagingSpace directly through scripted
//      failure schedules (single, rolling, simultaneous-(k-1), and
//      fail-during-repair with a partial anti-entropy budget) at replication
//      k = 1..3 over 8 servers in 4 failure domains. The gate: ZERO staged
//      objects lost for any schedule with <= k-1 concurrent failures, full
//      replication restored after recover + repair, and an FNV checksum of
//      the entire space state (ids, versions, replica lists, per-server
//      ledgers) byte-identical across reruns. A negative control kills every
//      replica of one object at once and must LOSE it — proving the harness
//      detects loss rather than vacuously passing.
//
//  (b) workflow chaos — runs the coupled workflow (Titan 128+8, adaptive
//      middleware) under crash schedules x replication {1,2} x heartbeat
//      lease {0,2}, on BOTH execution substrates. The gate: the event CSVs
//      are byte-identical across substrates and across reruns, and
//      dropped_bytes == 0 whenever the schedule's concurrent failures stay
//      <= k-1.
//
// --quick   trims part (b) to the single + simultaneous schedules (CI smoke)
// --json F  write the report as JSON to file F
// --check   exit non-zero unless every invariant above holds
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/machine.hpp"
#include "mesh/layout.hpp"
#include "runtime/fault.hpp"
#include "staging/space.hpp"
#include "workflow/coupled_workflow.hpp"
#include "workflow/execution_substrate.hpp"
#include "workflow/observer.hpp"
#include "workflow/trace_io.hpp"

namespace {

using namespace xl;
using namespace xl::workflow;
using mesh::Box;
using staging::LossPolicy;
using staging::StagingSpace;

// --- part (a): object-level chaos on the staging space -----------------------

constexpr int kServers = 8;
constexpr int kServersPerDomain = 2;
constexpr int kObjects = 64;
constexpr int kVersions = 4;
constexpr std::size_t kMemoryPerServer = std::size_t{1} << 20;

/// Scripted failure schedules. Every schedule keeps concurrent failures
/// <= k-1 (given its `min_k`), so the zero-loss invariant must hold.
enum class Schedule { Single, Rolling, Simultaneous, FailDuringRepair };

struct ScheduleSpec {
  Schedule schedule;
  const char* name;
  int min_k;  ///< smallest replication factor the schedule applies to.
};

const ScheduleSpec kSchedules[] = {
    // Relocate moves even a sole copy, so these hold at k = 1 too.
    {Schedule::Single, "single", 1},
    {Schedule::Rolling, "rolling", 1},
    // k-1 concurrent failures in distinct domains, survivors left degraded
    // until the anti-entropy pass.
    {Schedule::Simultaneous, "simultaneous-f", 2},
    // Second failure lands while the first repair is only part-way through
    // its byte budget: two concurrent failures, needs k >= 3.
    {Schedule::FailDuringRepair, "fail-during-repair", 3},
};

void populate(StagingSpace& space) {
  for (int i = 0; i < kObjects; ++i) {
    const Box box = Box::cube({(i % 8) * 32, ((i / 8) % 8) * 32, ((i / 16) % 4) * 64}, 16);
    space.put(i % kVersions, box, 1, 2048 + 64 * static_cast<std::size_t>(i % 7));
  }
}

/// Order-sensitive FNV over the complete observable space state: every
/// object's id, version, and replica list (primary first), plus every
/// server's liveness and ledger. Two runs of the same schedule must agree
/// bit-for-bit.
std::uint64_t space_checksum(const StagingSpace& space) {
  std::uint64_t h = 1469598103934665603ull;
  const auto fold = [&h](std::uint64_t x) { h = (h ^ x) * 1099511628211ull; };
  for (int s = 0; s < space.num_servers(); ++s) {
    fold(space.server_alive(s) ? 1 : 0);
    fold(space.server_used_bytes(s));
  }
  const Box all = Box::domain({256, 256, 256});
  for (int v = 0; v < kVersions; ++v) {
    for (const staging::StagedObject* obj : space.query(v, all)) {
      fold(obj->id);
      fold(static_cast<std::uint64_t>(obj->version));
      fold(obj->bytes);
      fold(obj->replicas.size());
      for (int r : obj->replicas) fold(static_cast<std::uint64_t>(r));
    }
  }
  return h;
}

struct ObjectResult {
  std::string label;
  int k = 0;
  std::size_t dropped_objects = 0;   ///< must be 0.
  std::size_t objects_after = 0;     ///< must be kObjects.
  std::size_t deficit_after = 0;     ///< must be 0 after recover + repair.
  std::size_t repaired_replicas = 0;
  std::uint64_t checksum = 0;        ///< must match the rerun's.
  bool ok = false;
};

ObjectResult run_object_schedule(int k, const ScheduleSpec& spec) {
  StagingSpace space(kServers, kMemoryPerServer, k, kServersPerDomain);
  populate(space);

  ObjectResult r;
  r.label = std::string("object/") + spec.name + "/k" + std::to_string(k);
  r.k = k;
  switch (spec.schedule) {
    case Schedule::Single: {
      const auto report = space.fail_server(2, LossPolicy::Relocate);
      r.dropped_objects += report.dropped_objects;
      space.recover_server(2);
      break;
    }
    case Schedule::Rolling: {
      for (int s = 0; s < kServers; ++s) {
        const auto report = space.fail_server(s, LossPolicy::Relocate);
        r.dropped_objects += report.dropped_objects;
        space.recover_server(s);
      }
      break;
    }
    case Schedule::Simultaneous: {
      // k-1 concurrent failures, one per failure domain, survivors left
      // under-replicated until the anti-entropy pass below.
      for (int f = 0; f < k - 1; ++f) {
        const auto report =
            space.fail_server(f * kServersPerDomain, LossPolicy::Repair);
        r.dropped_objects += report.dropped_objects;
      }
      const auto pass = space.anti_entropy_repair();
      r.repaired_replicas += pass.repaired_replicas;
      for (int f = 0; f < k - 1; ++f) space.recover_server(f * kServersPerDomain);
      break;
    }
    case Schedule::FailDuringRepair: {
      const auto first = space.fail_server(0, LossPolicy::Repair);
      r.dropped_objects += first.dropped_objects;
      // Partial pass: a tight byte budget leaves most of the deficit behind,
      // so the second failure overlaps an in-progress repair.
      const auto partial = space.anti_entropy_repair(/*max_bytes=*/4096);
      r.repaired_replicas += partial.repaired_replicas;
      const auto second = space.fail_server(2, LossPolicy::Repair);
      r.dropped_objects += second.dropped_objects;
      const auto full = space.anti_entropy_repair();
      r.repaired_replicas += full.repaired_replicas;
      space.recover_server(0);
      space.recover_server(2);
      break;
    }
  }

  // Converge: with every server back, one unbudgeted pass must restore full
  // replication.
  const auto final_pass = space.anti_entropy_repair();
  r.repaired_replicas += final_pass.repaired_replicas;
  r.objects_after = space.object_count();
  r.deficit_after = space.replica_deficit();
  r.checksum = space_checksum(space);
  r.ok = r.dropped_objects == 0 && r.objects_after == kObjects && r.deficit_after == 0;
  return r;
}

/// Negative control: kill every server holding a replica of one object, all
/// at once, with LossPolicy::Drop. The object MUST be lost — if this passes
/// without loss, the harness's loss accounting is broken and every green
/// zero-loss gate above is meaningless.
ObjectResult run_overload_control(int k) {
  StagingSpace space(kServers, kMemoryPerServer, k, kServersPerDomain);
  populate(space);

  ObjectResult r;
  r.label = "object/overload-control/k" + std::to_string(k);
  r.k = k;
  const auto victims = space.query(0, Box::domain({256, 256, 256}));
  const std::vector<int> replicas = victims.front()->replicas;  // k servers
  for (int s : replicas) {
    const auto report = space.fail_server(s, LossPolicy::Drop);
    r.dropped_objects += report.dropped_objects;
  }
  r.objects_after = space.object_count();
  r.deficit_after = 0;
  r.checksum = space_checksum(space);
  // The control PASSES by losing data.
  r.ok = r.dropped_objects >= 1 && r.objects_after < kObjects;
  return r;
}

// --- part (b): workflow-level chaos on both substrates -----------------------

struct WorkflowCase {
  const char* schedule;
  int replication;
  int lease_steps;
  int max_concurrent_down;  ///< worst overlap the crash schedule reaches.
};

WorkflowConfig chaos_config(const WorkflowCase& wc) {
  WorkflowConfig c;
  c.machine = cluster::titan();
  c.sim_cores = 128;
  c.staging_cores = 8;
  c.steps = 15;
  // Static in-transit with deliberately expensive analysis kernels: the
  // staging backlog is non-empty when the crash fires, so the shed / repair
  // arithmetic runs on real staged bytes instead of an empty ledger (and the
  // adaptive middleware cannot dodge the fault by going in-situ).
  c.mode = Mode::StaticInTransit;
  c.geometry.base_domain = Box::domain({256, 128, 128});
  c.geometry.nranks = 128;
  c.geometry.tile_size = 8;
  c.geometry.front_speed = 0.01;
  c.memory_model.ncomp = 1;
  c.hints.factor_phases = {{0, {2}}};
  c.active_cell_fraction = 0.5;
  c.costs.mc_scan_flops_per_cell = 500;
  c.costs.mc_active_flops_per_cell = 5000;
  c.replication = wc.replication;

  // Crash-only schedules: no transfer drops, so every nonzero dropped_bytes
  // is a staged-object loss and the zero-loss gate is unambiguous.
  c.faults = runtime::parse_fault_spec("seed=11;retries=2;backoff=0.001");
  c.faults.lease_steps = wc.lease_steps;
  const auto crash = [&c](int step, int servers, int duration) {
    runtime::FaultSpec spec;
    spec.kind = runtime::FaultKind::ServerCrash;
    spec.step = step;
    spec.servers = servers;
    spec.duration_steps = duration;
    c.faults.events.push_back(spec);
  };
  if (std::strcmp(wc.schedule, "single") == 0) {
    crash(5, 1, 4);
  } else if (std::strcmp(wc.schedule, "rolling") == 0) {
    crash(4, 1, 3);
    crash(9, 1, 3);
  } else if (std::strcmp(wc.schedule, "simultaneous") == 0) {
    crash(5, 2, 4);
  } else {  // fail-during-repair: second crash lands while the first repair
            // is still queued, but the outages never overlap.
    crash(5, 1, 2);
    crash(8, 1, 2);
  }
  return c;
}

struct WorkflowCaseResult {
  std::string label;
  WorkflowCase wc{};
  std::size_t dropped_bytes = 0;
  int suspicions = 0;
  int repairs = 0;
  int read_repairs = 0;
  double end_to_end_seconds = 0.0;
  std::uint64_t csv_checksum = 0;
  bool identical_substrates = false;
  bool identical_rerun = false;
  bool zero_loss_required = false;
  bool ok = false;
};

std::uint64_t fnv(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char ch : s) h = (h ^ ch) * 1099511628211ull;
  return h;
}

std::string events_csv_of(const WorkflowConfig& config, ExecutionSubstrate& substrate,
                          WorkflowResult* out) {
  CoupledWorkflow wf(config);
  EventLog log;
  wf.set_observer(&log);
  const WorkflowResult result = wf.run_on(substrate);
  if (out) *out = result;
  std::ostringstream os;
  write_events_csv(os, log);
  return os.str();
}

WorkflowCaseResult run_workflow_case(const WorkflowCase& wc) {
  const WorkflowConfig config = chaos_config(wc);

  WorkflowCaseResult r;
  r.wc = wc;
  r.label = std::string("workflow/") + wc.schedule + "/k" +
            std::to_string(wc.replication) + "/lease" + std::to_string(wc.lease_steps);

  WorkflowResult result;
  AnalyticSubstrate analytic1, analytic2;
  EventQueueSubstrate des;
  const std::string a1 = events_csv_of(config, analytic1, &result);
  const std::string a2 = events_csv_of(config, analytic2, nullptr);
  const std::string d = events_csv_of(config, des, nullptr);

  r.dropped_bytes = result.dropped_bytes;
  r.suspicions = result.server_suspicions;
  r.repairs = result.repairs_scheduled;
  r.read_repairs = result.read_repairs;
  r.end_to_end_seconds = result.end_to_end_seconds;
  r.csv_checksum = fnv(a1);
  r.identical_rerun = a1 == a2;
  r.identical_substrates = a1 == d;
  r.zero_loss_required = wc.max_concurrent_down <= wc.replication - 1;
  r.ok = r.identical_rerun && r.identical_substrates &&
         (!r.zero_loss_required || r.dropped_bytes == 0);
  return r;
}

// --- report ------------------------------------------------------------------

void write_json(const std::string& path, bool quick,
                const std::vector<ObjectResult>& objects,
                const std::vector<WorkflowCaseResult>& workflows) {
  std::ofstream os(path);
  os << "{\n"
     << "  \"bench\": \"chaos_sweep\",\n"
     << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
     << "  \"object_cases\": [\n";
  for (std::size_t i = 0; i < objects.size(); ++i) {
    const ObjectResult& r = objects[i];
    os << "    {\"case\": \"" << r.label << "\", \"replication\": " << r.k
       << ", \"dropped_objects\": " << r.dropped_objects
       << ", \"objects_after\": " << r.objects_after
       << ", \"deficit_after\": " << r.deficit_after
       << ", \"repaired_replicas\": " << r.repaired_replicas
       << ", \"checksum\": " << r.checksum << ", \"ok\": " << (r.ok ? "true" : "false")
       << "}" << (i + 1 < objects.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"workflow_cases\": [\n";
  for (std::size_t i = 0; i < workflows.size(); ++i) {
    const WorkflowCaseResult& r = workflows[i];
    os << "    {\"case\": \"" << r.label << "\", \"dropped_bytes\": " << r.dropped_bytes
       << ", \"suspicions\": " << r.suspicions << ", \"repairs\": " << r.repairs
       << ", \"read_repairs\": " << r.read_repairs
       << ", \"end_to_end_seconds\": " << r.end_to_end_seconds
       << ", \"csv_checksum\": " << r.csv_checksum
       << ", \"identical_substrates\": " << (r.identical_substrates ? "true" : "false")
       << ", \"identical_rerun\": " << (r.identical_rerun ? "true" : "false")
       << ", \"zero_loss_required\": " << (r.zero_loss_required ? "true" : "false")
       << ", \"ok\": " << (r.ok ? "true" : "false") << "}"
       << (i + 1 < workflows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool check = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: bench_chaos_sweep [--quick] [--check] [--json FILE]\n";
      return 2;
    }
  }

  bool ok = true;

  // --- part (a): object chaos (cheap; identical in quick and full mode) ----
  std::printf("=== Chaos sweep (a): staged-object durability, %d servers / %d domains ===\n",
              kServers, kServers / kServersPerDomain);
  std::printf("%-34s %8s %8s %8s %9s %18s %5s\n", "case", "dropped", "objects",
              "deficit", "repaired", "checksum", "ok");
  std::vector<ObjectResult> objects;
  for (int k = 1; k <= 3; ++k) {
    for (const ScheduleSpec& spec : kSchedules) {
      if (k < spec.min_k) continue;
      ObjectResult r = run_object_schedule(k, spec);
      const ObjectResult rerun = run_object_schedule(k, spec);
      if (rerun.checksum != r.checksum) {
        std::cerr << "FAIL: " << r.label << " checksum drifted across reruns\n";
        r.ok = false;
      }
      objects.push_back(r);
    }
    objects.push_back(run_overload_control(k));
  }
  for (const ObjectResult& r : objects) {
    std::printf("%-34s %8zu %8zu %8zu %9zu %18llu %5s\n", r.label.c_str(),
                r.dropped_objects, r.objects_after, r.deficit_after,
                r.repaired_replicas, static_cast<unsigned long long>(r.checksum),
                r.ok ? "yes" : "NO");
    if (!r.ok) {
      std::cerr << "FAIL: " << r.label << " violated its invariant\n";
      ok = false;
    }
  }

  // --- part (b): workflow chaos on both substrates --------------------------
  std::vector<const char*> schedules;
  if (quick) {
    schedules = {"single", "simultaneous"};
  } else {
    schedules = {"single", "rolling", "simultaneous", "fail-during-repair"};
  }
  std::printf("\n=== Chaos sweep (b): workflow crash schedules x replication x lease (%s) ===\n",
              quick ? "quick" : "full");
  std::printf("%-42s %12s %5s %7s %7s %10s %6s %5s %5s\n", "case", "dropped_B",
              "susp", "repairs", "rd-rep", "end-to-end", "subst", "rerun", "ok");
  std::vector<WorkflowCaseResult> workflows;
  for (const char* schedule : schedules) {
    const int max_down = std::strcmp(schedule, "simultaneous") == 0 ? 2 : 1;
    for (int k : {1, 2}) {
      for (int lease : {0, 2}) {
        WorkflowCaseResult r = run_workflow_case({schedule, k, lease, max_down});
        std::printf("%-42s %12zu %5d %7d %7d %9.1fs %6s %5s %5s\n", r.label.c_str(),
                    r.dropped_bytes, r.suspicions, r.repairs, r.read_repairs,
                    r.end_to_end_seconds, r.identical_substrates ? "yes" : "NO",
                    r.identical_rerun ? "yes" : "NO", r.ok ? "yes" : "NO");
        if (!r.ok) {
          std::cerr << "FAIL: " << r.label
                    << (r.identical_substrates ? "" : " substrates diverged")
                    << (r.identical_rerun ? "" : " rerun diverged")
                    << (r.zero_loss_required && r.dropped_bytes > 0
                            ? " lost staged bytes under <= k-1 failures"
                            : "")
                    << "\n";
          ok = false;
        }
        workflows.push_back(r);
      }
    }
  }
  std::printf("(event CSVs bit-identical across substrates and reruns in every case)\n");

  if (!json_path.empty()) write_json(json_path, quick, objects, workflows);

  if (check) {
    if (!ok) return 1;
    std::printf("check: OK (%zu object cases zero-loss + negative control, "
                "%zu workflow cases substrate- and rerun-identical)\n",
                objects.size(), workflows.size());
  }
  return ok ? 0 : 1;
}
