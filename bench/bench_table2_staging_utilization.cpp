// Table 2 reproduction: during the global (cross-layer) runs, how many time
// steps actually used 100% / 75% / 50% / <50% of the preallocated in-transit
// cores while performing in-transit analysis.
//
// Paper reference (sim:staging, total steps, steps per bucket):
//   2K:128   27 | 25  2  -  -
//   4K:256   42 |  8 13  4 17
//   8K:512   49 |  4 23 22  -
//   16K:1024 41 | 10 12 10  9
// Our application-layer reduction is more aggressive than the paper's
// effective reduction, so our allocations skew further below the pool
// (EXPERIMENTS.md); the qualitative claim — the global adaptation frees
// preallocated staging cores — is what this table checks.
#include <iostream>

#include "bench_util.hpp"

using namespace xl;
using namespace xl::workflow;
using xl::bench::RunCache;

namespace {

std::string key_of(int scale) {
  return "table2/" + std::string(titan_scales()[static_cast<std::size_t>(scale)].label);
}

void bench_run(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  state.SetLabel(key_of(scale));
  xl::bench::run_workflow_benchmark(state, key_of(scale), [=] {
    return titan_global_experiment(scale, Mode::Global);
  });
}

void print_table() {
  std::cout << "\n=== Table 2: actual in-transit core utilization (global adaptation) ===\n";
  Table t({"sim:staging", "total steps", "in-transit steps", "100% cores", "75% cores",
           "50% cores", "<50% cores", "mean M / pool"});
  for (int scale = 0; scale < 4; ++scale) {
    // Copy: titan_scales() returns a fresh vector, references would dangle.
    const TitanScale ts = titan_scales()[static_cast<std::size_t>(scale)];
    const WorkflowResult& r = RunCache::instance().get(key_of(scale), [=] {
      return titan_global_experiment(scale, Mode::Global);
    });
    int b100 = 0, b75 = 0, b50 = 0, blt = 0, intransit = 0;
    double m_sum = 0.0;
    for (const StepRecord& s : r.steps) {
      if (s.placement != runtime::Placement::InTransit) continue;
      ++intransit;
      m_sum += s.intransit_cores;
      const double f = static_cast<double>(s.intransit_cores) / ts.staging_cores;
      if (f >= 0.995) ++b100;
      else if (f >= 0.75) ++b75;
      else if (f >= 0.5) ++b50;
      else ++blt;
    }
    t.row()
        .cell(std::to_string(ts.sim_cores / 1024) + "K:" + std::to_string(ts.staging_cores))
        .cell(r.steps.size())
        .cell(intransit)
        .cell(b100)
        .cell(b75)
        .cell(b50)
        .cell(blt)
        .cell(format_percent(m_sum / intransit / ts.staging_cores));
  }
  std::cout << t.to_string();
}

}  // namespace

BENCHMARK(bench_run)->DenseRange(0, 3)->Unit(benchmark::kMillisecond)->Iterations(1);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  return 0;
}
