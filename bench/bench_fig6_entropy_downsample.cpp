// Fig. 6 reproduction: entropy-based adaptive down-sampling on a real
// Polytropic Gas field. The paper renders two isosurface close-ups (we cannot
// ship images); the decision data behind the figure is reproduced instead:
// per-block entropy (paper: finest-level blocks between 5.14 and 9.85 bits),
// the per-block factor (low-entropy blocks reduced 4x, high-entropy kept),
// and the quantitative fidelity of the result (triangle counts + RMSE/PSNR
// of the reconstruction vs. the full-resolution field).
#include <algorithm>
#include <benchmark/benchmark.h>
#include <sstream>

#include <iostream>
#include <memory>

#include "amr/amr_simulation.hpp"
#include "amr/polytropic_gas.hpp"
#include "analysis/downsample.hpp"
#include "analysis/entropy.hpp"
#include "analysis/statistics.hpp"
#include "common/table.hpp"
#include "viz/marching_cubes.hpp"

using namespace xl;

namespace {

/// One evolved density field (run once, reused by benchmarks and the table).
const mesh::Fab& density_field() {
  static const mesh::Fab field = [] {
    amr::AmrConfig cfg;
    cfg.base_domain = mesh::Box::domain({32, 32, 32});
    cfg.max_levels = 1;
    cfg.max_box_size = 32;
    cfg.nghost = 2;
    cfg.nranks = 1;
    auto physics = std::make_shared<amr::PolytropicGas>();
    amr::AmrSimulation sim(cfg, physics, {}, 0.3);
    sim.initialize();
    for (int i = 0; i < 12; ++i) sim.advance();
    return analysis::subset(sim.hierarchy().level(0).data[0],
                            sim.hierarchy().level(0).layout.box(0));
  }();
  return field;
}

analysis::EntropyConfig entropy_config() {
  analysis::EntropyConfig cfg;
  cfg.comp = amr::PolytropicGas::kRho;
  cfg.bins = 256;
  const auto stats =
      analysis::descriptive_stats(density_field(), density_field().box(), cfg.comp);
  cfg.range_lo = stats.min();
  cfg.range_hi = stats.max();
  return cfg;
}

void bench_block_entropy(benchmark::State& state) {
  const mesh::Fab& f = density_field();
  const analysis::EntropyConfig cfg = entropy_config();
  for (auto _ : state) {
    const double h = analysis::block_entropy(f, f.box(), cfg);
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(state.iterations() * f.cells());
}

void bench_downsample(benchmark::State& state) {
  const mesh::Fab& f = density_field();
  for (auto _ : state) {
    const mesh::Fab d = analysis::downsample(f, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(d.size());
  }
  state.SetItemsProcessed(state.iterations() * f.cells());
}

void bench_marching_cubes(benchmark::State& state) {
  const mesh::Fab& f = density_field();
  const mesh::Box cells(f.box().lo(), f.box().hi() - 1);
  for (auto _ : state) {
    const auto mesh = viz::extract_isosurface(f, cells, 0.5, 0);
    benchmark::DoNotOptimize(mesh.triangle_count());
  }
  state.SetItemsProcessed(state.iterations() * cells.num_cells());
}

void print_figure() {
  const mesh::Fab& field = density_field();
  const analysis::EntropyConfig ecfg = entropy_config();

  // Threshold between "keep" and "reduce 4x": midway through the observed
  // block-entropy range, mirroring the paper's 5.14-vs-9.21 example.
  const auto probe = analysis::entropy_downsample_plan(field, 8, {0.0}, {1, 1}, ecfg);
  double h_lo = 1e300, h_hi = -1e300;
  for (const auto& d : probe) {
    h_lo = std::min(h_lo, d.entropy);
    h_hi = std::max(h_hi, d.entropy);
  }
  const double threshold = 0.5 * (h_lo + h_hi);
  const auto plan =
      analysis::entropy_downsample_plan(field, 8, {threshold}, {1, 4}, ecfg);

  std::cout << "\n=== Figure 6: entropy-based data down-sampling ===\n"
            << "block entropies span [" << h_lo << ", " << h_hi
            << "] bits (paper: 5.14 .. 9.85); threshold " << threshold << "\n\n";

  Table t({"block", "entropy (bits)", "factor", "triangles full", "triangles reduced",
           "RMSE", "PSNR (dB)"});
  std::size_t full_tris = 0, reduced_tris = 0, full_bytes = 0, kept_bytes = 0;
  for (const auto& d : plan) {
    const mesh::Fab sub = analysis::subset(field, d.block);
    const mesh::Box cells(sub.box().lo(), sub.box().hi() - 1);
    const auto full = viz::extract_isosurface(sub, cells, 0.5, 0);
    const mesh::Fab rec = analysis::upsample_constant(
        analysis::downsample(sub, d.factor), sub.box(), d.factor);
    const auto red = viz::extract_isosurface(rec, cells, 0.5, 0);
    std::ostringstream name;
    name << d.block;
    t.row()
        .cell(name.str())
        .cell(d.entropy, 2)
        .cell(d.factor)
        .cell(full.triangle_count())
        .cell(red.triangle_count())
        .cell(analysis::rmse(sub, rec), 4)
        .cell(analysis::psnr(sub, rec), 1);
    full_tris += full.triangle_count();
    reduced_tris += red.triangle_count();
    full_bytes += sub.bytes();
    kept_bytes += sub.bytes() / (static_cast<std::size_t>(d.factor) * d.factor * d.factor);
  }
  std::cout << t.to_string();
  std::cout << "\nadaptive result keeps "
            << format_percent(static_cast<double>(kept_bytes) / full_bytes)
            << " of the bytes and "
            << format_percent(static_cast<double>(reduced_tris) /
                              std::max<std::size_t>(1, full_tris))
            << " of the isosurface triangles; high-entropy (structured) blocks\n"
               "retain full resolution, low-entropy blocks are reduced 4x —\n"
               "the paper's Fig. 6(b) behaviour.\n";
}

}  // namespace

BENCHMARK(bench_block_entropy)->Unit(benchmark::kMillisecond);
BENCHMARK(bench_downsample)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(bench_marching_cubes)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_figure();
  return 0;
}
